/**
 * @file
 * fcctool — command-line front end to the library, the tool a
 * downstream user would actually run.
 *
 *   fcctool compress   <in>      <out.fcc>   streaming compression
 *   fcctool decompress <in.fcc>  <out>       streaming decompression
 *   fcctool info       <file>                describe a file
 *   fcctool convert    <in> <out>            any-to-any format copy
 *
 * Inputs may be TSH, pcap or pcapng, each optionally gzip'd; the
 * format is auto-detected from magic bytes (TSH by heuristic).
 * Everything streams through the trace I/O subsystem, so memory
 * stays bounded whatever the file size.
 *
 * Options (before the subcommand):
 *   --threshold <pct>    similarity threshold (default 2.0, eq. 4)
 *   --cutoff <n>         short/long split (default 50)
 *   --threads <n>        pipeline workers (0 = all cores, default)
 *   --chunk-records <n>  time-seq records per chunk (default 4096;
 *                        the unit of parallel decode and random
 *                        access, 0 = unchunked)
 *   --container <fmt>    fcc1|fcc2|fcc3 (default fcc3, the columnar
 *                        container; decompression auto-detects)
 *   --backend <name>     store|deflate|range — FCC3 per-column
 *                        entropy backend (default deflate)
 *   --index              compress: write a seekable archive (FCC3
 *                        chunk/flow index for fccquery);
 *                        info: also print the per-chunk index table
 *   --in-format <fmt>    auto|tsh|pcap|pcapng[.gz]  (default auto)
 *   --out-format <fmt>   auto|tsh|pcap|pcapng       (default auto:
 *                        decompress/convert pick by extension)
 *   --help               full flag reference
 *
 * `info` on an .fcc file prints the container version and whether
 * the file carries a chunk/flow index (an explicit "none" when it
 * does not — absence is a property, not an empty table); for FCC3
 * it adds the per-column table (field codec, entropy backend,
 * encoded and stored bytes) and the per-dataset *compressed*
 * sizes — where the file's bytes actually go, not the pre-backend
 * serialized sizes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codec/deflate/deflate.hpp"
#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/source.hpp"
#include "util/error.hpp"

#include "tools/cli.hpp"

using namespace fcc;

namespace {

bool
hasSuffix(const std::string &text, const char *suffix)
{
    std::string s(suffix);
    return text.size() >= s.size() &&
           text.compare(text.size() - s.size(), s.size(), s) == 0;
}

/** True when @p path starts with an FCC container magic. */
bool
isFccFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char head[4] = {};
    in.read(head, sizeof(head));
    return in.gcount() == 4 && head[0] == 'F' && head[1] == 'C' &&
           head[2] == 'C' && head[3] >= '1' && head[3] <= '3';
}

/**
 * True when @p path starts like a zlib stream (CMF 0x78) — possibly
 * the hybrid whole-blob-deflated FCC container, but 0x78 is only a
 * guess ('x', or a TSH timestamp from 2033), so callers must be
 * ready to fall back.
 */
bool
isZlibStart(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char head[1] = {};
    in.read(head, sizeof(head));
    return in.gcount() == 1 && head[0] == 0x78;
}

void
infoTrace(const std::string &path,
          const trace::TraceFormatSpec &inFormat)
{
    trace::DetectedFormat detected;
    auto src = trace::openTraceSource(path, inFormat, &detected);
    trace::Trace tr = trace::readAllPackets(*src);

    flow::FlowTable table;
    auto flows = table.assemble(tr);
    auto stats = flow::computeFlowStats(flows, tr);
    std::printf("format:          %s\n",
                trace::traceFormatName(detected.format,
                                       detected.gzip).c_str());
    std::printf("packets:         %zu\n", tr.size());
    std::printf("duration:        %.3f s\n", tr.durationSec());
    std::printf("wire bytes:      %llu\n",
                static_cast<unsigned long long>(
                    tr.totalWireBytes()));
    std::printf("flows:           %llu (%.1f%% short)\n",
                static_cast<unsigned long long>(stats.flows),
                100.0 * stats.shortFlowShare());
    std::printf("mean flow len:   %.1f packets\n",
                stats.meanFlowLength());
}

void
infoFcc(const std::string &path, bool showIndex)
{
    std::ifstream in(path, std::ios::binary);
    util::require(in.good(), "cannot open " + path);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    size_t fileBytes = bytes.size();
    bool hybrid = !bytes.empty() && bytes[0] == 0x78;
    if (hybrid)
        bytes = codec::deflate::zlibDecompress(bytes);

    codec::fcc::ContainerStat stat;
    auto d = codec::fcc::deserialize(bytes, nullptr, &stat);
    std::printf("FCC compressed trace (%zu bytes%s)\n", fileBytes,
                hybrid ? ", whole-blob deflate" : "");
    if (stat.version == 3)
        std::printf("container:        FCC3 columnar (%zu chunks%s)\n",
                    d.chunkSizes.size(),
                    stat.hasIndex ? ", indexed" : "");
    else if (stat.version == 2)
        std::printf("container:        FCC2 (%zu chunks)\n",
                    d.chunkSizes.size());
    else
        std::printf("container:        FCC1 (single stream)\n");
    // Index absence is a property of the file, not an empty table:
    // say it explicitly either way.
    if (stat.hasIndex)
        std::printf("index:            %zu chunks, %llu bytes "
                    "(%.1f%% of file)\n",
                    d.chunkSizes.size(),
                    static_cast<unsigned long long>(
                        stat.sizes.indexBytes),
                    fileBytes ? 100.0 *
                                    static_cast<double>(
                                        stat.sizes.indexBytes) /
                                    static_cast<double>(fileBytes)
                              : 0.0);
    else
        std::printf("index:            none (random access needs "
                    "a full decode; write with --index)\n");
    if (stat.fidelity == codec::fcc::Fidelity::Quantized)
        std::printf("fidelity:         quantized (%llu us grid)\n",
                    static_cast<unsigned long long>(
                        stat.quantumUs));
    else
        std::printf("fidelity:         %s\n",
                    codec::fcc::fidelityName(stat.fidelity));
    std::printf("weights:          {%u, %u, %u}\n", d.weights.w1,
                d.weights.w2, d.weights.w3);
    if (d.fidelity == codec::fcc::Fidelity::Flow) {
        // Flow-tier archives carry per-flow records, no templates.
        std::printf("flows (records):  %zu\n",
                    d.flowRecords.size());
        std::printf("addresses:        %zu\n", d.addresses.size());
        uint64_t packets = 0;
        for (const auto &fl : d.flowRecords)
            packets += fl.packets;
        std::printf("packets counted:  %llu (not reconstructable "
                    "at this tier)\n",
                    static_cast<unsigned long long>(packets));
    } else {
        std::printf("flows (time-seq): %zu\n", d.timeSeq.size());
        std::printf("short templates:  %zu\n",
                    d.shortTemplates.size());
        std::printf("long templates:   %zu\n",
                    d.longTemplates.size());
        std::printf("addresses:        %zu\n", d.addresses.size());
        uint64_t packets = 0;
        for (const auto &rec : d.timeSeq)
            packets += rec.isLong
                ? d.longTemplates[rec.templateIndex].sValues.size()
                : d.shortTemplates[rec.templateIndex].size();
        std::printf("packets encoded:  %llu\n",
                    static_cast<unsigned long long>(packets));
    }

    // Where the container's bytes actually go. For FCC3 these are
    // the post-backend (compressed) sizes; for FCC1/FCC2 the stream
    // is its own serialization, optionally deflated as one blob.
    std::printf("\n%-22s %10s\n", "dataset",
                stat.version == 3 ? "stored B" : "bytes");
    std::printf("%-22s %10llu\n", "short-flows-template",
                static_cast<unsigned long long>(
                    stat.sizes.shortTemplateBytes));
    std::printf("%-22s %10llu\n", "long-flows-template",
                static_cast<unsigned long long>(
                    stat.sizes.longTemplateBytes));
    std::printf("%-22s %10llu\n", "address",
                static_cast<unsigned long long>(
                    stat.sizes.addressBytes));
    std::printf("%-22s %10llu\n", "time-seq",
                static_cast<unsigned long long>(
                    stat.sizes.timeSeqBytes));
    std::printf("%-22s %10llu\n", "header",
                static_cast<unsigned long long>(
                    stat.sizes.headerBytes));
    if (hybrid)
        std::printf("(whole-blob deflate: %zu serialized -> %zu "
                    "file bytes)\n",
                    bytes.size(), fileBytes);

    if (stat.version == 3) {
        std::printf("\n%-12s %-7s %-8s %10s %10s %10s\n", "column",
                    "codec", "backend", "values", "encoded B",
                    "stored B");
        for (const auto &col : stat.columns)
            std::printf("%-12s %-7s %-8s %10llu %10llu %10llu\n",
                        col.name.c_str(),
                        codec::field::fieldCodecName(col.codec),
                        codec::backend::backendName(col.backend),
                        static_cast<unsigned long long>(col.values),
                        static_cast<unsigned long long>(
                            col.encodedBytes),
                        static_cast<unsigned long long>(
                            col.storedBytes));
        if (stat.hasIndex)
            std::printf("(indexed archive: ts_* rows aggregate the "
                        "per-chunk frames;\n tags show chunk 0's "
                        "choice)\n");
    }

    if (showIndex && stat.hasIndex) {
        auto index = codec::fcc::readArchiveIndex(bytes);
        util::require(index.has_value(),
                      "fcc index: footer vanished mid-info");
        std::printf("\nindex (gap %u us):\n", index->gapUs);
        std::printf("%6s %10s %10s %8s %8s %12s %12s %8s\n",
                    "chunk", "offset", "bytes", "flows", "packets",
                    "first (s)", "last <= (s)", "bloom b");
        for (size_t c = 0; c < index->chunks.size(); ++c) {
            const auto &s = index->chunks[c];
            std::printf(
                "%6zu %10llu %10llu %8llu %8llu %12.3f %12.3f "
                "%8u\n",
                c, static_cast<unsigned long long>(s.byteOffset),
                static_cast<unsigned long long>(s.byteLength),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.packets),
                static_cast<double>(s.minFirstUs) * 1e-6,
                static_cast<double>(s.maxEndUs) * 1e-6,
                s.bloomBits);
        }
    } else if (showIndex) {
        std::printf("\n(no index table: the file has no index "
                    "block)\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    codec::fcc::FccConfig cfg;
    // The tool writes the columnar container by default; the library
    // default stays FCC2 (the paper's layout). --container fcc1|fcc2
    // keeps the row formats fully writable.
    cfg.container = codec::fcc::ContainerFormat::Fcc3;
    trace::TraceFormatSpec inFormat, outFormat;
    bool showIndex = false;

    cli::FlagSet flags(
        "[options] <command> ...",
        "Streaming compression front end. Inputs may be TSH, pcap\n"
        "or pcapng, each optionally gzip'd; the format is\n"
        "auto-detected from magic bytes. Options come before the\n"
        "command.");
    flags.epilog(
        "commands:\n"
        "  compress   <in>      <out.fcc>   (in: any trace format)\n"
        "  decompress <in.fcc>  <out>\n"
        "  info       <file>                (trace or .fcc)\n"
        "  convert    <in> <out>            (any format to any)");
    flags.add("--threshold", "PCT",
              "similarity threshold of eq. 4 (default 2.0)",
              [&](const char *v) {
                  cfg.rule.percent = std::atof(v);
              });
    flags.add("--cutoff", "N",
              "short/long flow split in packets (default 50)",
              [&](const char *v) {
                  cfg.shortLimit = static_cast<uint32_t>(
                      cli::parseUnsigned("--cutoff", v, 0,
                                         UINT32_MAX));
              });
    flags.add("--threads", "N",
              "pipeline workers, 0 = all cores (default;\n"
              "output bytes never depend on it)",
              [&](const char *v) {
                  cfg.threads = static_cast<uint32_t>(
                      cli::parseUnsigned("--threads", v, 0,
                                         UINT32_MAX));
              });
    flags.add("--chunk-records", "N",
              "time-seq records per chunk (default 4096;\n"
              "the unit of parallel decode and of random\n"
              "access — see --index; 0 = unchunked legacy\n"
              "layout)",
              [&](const char *v) {
                  cfg.chunkRecords = static_cast<uint32_t>(
                      cli::parseUnsigned("--chunk-records", v, 0,
                                         UINT32_MAX));
              });
    flags.add("--container", "FMT",
              "fcc1|fcc2|fcc3 wire container (default\n"
              "fcc3; decompression auto-detects all three)",
              [&](const char *v) {
                  cfg.container =
                      codec::fcc::parseContainerName(v);
              });
    flags.add("--backend", "NAME",
              "store|deflate|range — FCC3 per-column\n"
              "entropy backend (default deflate)",
              [&](const char *v) {
                  cfg.backend =
                      codec::backend::parseBackendName(v);
              });
    flags.add("--index",
              "compress: write a seekable archive\n"
              "(chunk/flow index; fcc3 only, see fccquery);\n"
              "info: print the per-chunk index table",
              [&] {
                  cfg.index = true;
                  showIndex = true;
              });
    flags.add("--fidelity", "TIER",
              "exact|quantized|header|flow — fidelity tier\n"
              "of the written archive (default exact; lossy\n"
              "tiers need the fcc3 container, see\n"
              "docs/FIDELITY.md)",
              [&](const char *v) {
                  cfg.fidelity = codec::fcc::parseFidelityName(v);
              });
    flags.add("--quantum-us", "N",
              "timestamp grid of the quantized tier in\n"
              "microseconds (default 1000)",
              [&](const char *v) {
                  cfg.quantumUs = cli::parseUnsigned(
                      "--quantum-us", v, 1, UINT64_MAX);
              });
    flags.add("--in-format", "FMT",
              "auto|tsh|pcap|pcapng[.gz] (default auto:\n"
              "detect by magic bytes)",
              [&](const char *v) {
                  inFormat = trace::parseTraceFormatSpec(v);
              });
    flags.add("--out-format", "FMT",
              "auto|tsh|pcap|pcapng (default auto: pick by\n"
              "output extension)",
              [&](const char *v) {
                  outFormat = trace::parseTraceFormatSpec(v);
              });

    cli::ParseResult parsed = flags.parse(argc, argv);
    if (parsed.exit)
        return parsed.code;
    int arg = parsed.next;
    if (arg >= argc) {
        flags.printHelp(argv[0], stderr);
        return 2;
    }
    std::string command = argv[arg++];

    try {
        // One uniform config check before any command touches a
        // file — the same entry point the sessions validate with.
        cfg.validate();
        if (command == "compress" && arg + 1 < argc) {
            auto stats = codec::fcc::compressTraceFile(
                argv[arg], argv[arg + 1], cfg, inFormat);
            cli::printCompressStats(stats);
            return 0;
        }
        if (command == "decompress" && arg + 1 < argc) {
            auto stats = codec::fcc::decompressTraceFile(
                argv[arg], argv[arg + 1], cfg, outFormat);
            cli::printDecompressStats(stats);
            return 0;
        }
        if (command == "info" && arg < argc) {
            std::string path = argv[arg];
            if (hasSuffix(path, ".fcc") || isFccFile(path)) {
                infoFcc(path, showIndex);
            } else if (isZlibStart(path)) {
                // Could be a whole-blob-deflated FCC file or just a
                // trace whose first byte happens to be 0x78.
                try {
                    infoFcc(path, showIndex);
                } catch (const util::Error &) {
                    infoTrace(path, inFormat);
                }
            } else {
                infoTrace(path, inFormat);
            }
            return 0;
        }
        if (command == "convert" && arg + 1 < argc) {
            auto src = trace::openTraceSource(argv[arg], inFormat);
            auto sink = trace::openTraceSink(argv[arg + 1],
                                             outFormat);
            std::vector<trace::PacketRecord> batch(4096);
            uint64_t packets = 0;
            size_t n;
            while ((n = src->read(batch)) > 0) {
                sink->write(std::span<const trace::PacketRecord>(
                    batch.data(), n));
                packets += n;
            }
            sink->close();
            std::printf("converted %llu packets\n",
                        static_cast<unsigned long long>(packets));
            return 0;
        }
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    flags.printHelp(argv[0], stderr);
    return 2;
}
