/**
 * @file
 * fcctool — command-line front end to the library, the tool a
 * downstream user would actually run.
 *
 *   fcctool compress   <in.tsh> <out.fcc>    streaming compression
 *   fcctool decompress <in.fcc> <out.tsh>    streaming decompression
 *   fcctool info       <in.{fcc,tsh,pcap}>   describe a file
 *   fcctool convert    <in.{tsh,pcap}> <out.{tsh,pcap}>
 *
 * Options (before the subcommand):
 *   --threshold <pct>   similarity threshold (default 2.0, eq. 4)
 *   --cutoff <n>        short/long split (default 50)
 *   --threads <n>       pipeline workers (0 = all cores, default)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/pcap.hpp"
#include "trace/tsh.hpp"
#include "util/error.hpp"

using namespace fcc;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--threshold PCT] [--cutoff N] [--threads N] "
        "<command> ...\n"
        "  compress   <in.tsh>  <out.fcc>\n"
        "  decompress <in.fcc>  <out.tsh>\n"
        "  info       <in.fcc|in.tsh|in.pcap>\n"
        "  convert    <in.tsh|in.pcap> <out.tsh|out.pcap>\n",
        argv0);
    return 2;
}

bool
hasSuffix(const std::string &text, const char *suffix)
{
    std::string s(suffix);
    return text.size() >= s.size() &&
           text.compare(text.size() - s.size(), s.size(), s) == 0;
}

trace::Trace
loadAnyTrace(const std::string &path)
{
    if (hasSuffix(path, ".pcap"))
        return trace::readPcapFile(path);
    if (hasSuffix(path, ".tsh"))
        return trace::readTshFile(path);
    throw util::Error("expected a .tsh or .pcap file: " + path);
}

void
saveAnyTrace(const trace::Trace &tr, const std::string &path)
{
    if (hasSuffix(path, ".pcap")) {
        trace::writePcapFile(tr, path);
        return;
    }
    if (hasSuffix(path, ".tsh")) {
        trace::writeTshFile(tr, path);
        return;
    }
    throw util::Error("expected a .tsh or .pcap output: " + path);
}

void
infoTrace(const trace::Trace &tr)
{
    flow::FlowTable table;
    auto flows = table.assemble(tr);
    auto stats = flow::computeFlowStats(flows, tr);
    std::printf("packets:         %zu\n", tr.size());
    std::printf("duration:        %.3f s\n", tr.durationSec());
    std::printf("wire bytes:      %llu\n",
                static_cast<unsigned long long>(
                    tr.totalWireBytes()));
    std::printf("flows:           %llu (%.1f%% short)\n",
                static_cast<unsigned long long>(stats.flows),
                100.0 * stats.shortFlowShare());
    std::printf("mean flow len:   %.1f packets\n",
                stats.meanFlowLength());
}

void
infoFcc(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    util::require(in.good(), "cannot open " + path);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    auto d = codec::fcc::deserialize(bytes);
    std::printf("FCC compressed trace (%zu bytes)\n", bytes.size());
    if (d.chunkSizes.empty())
        std::printf("container:        FCC1 (single stream)\n");
    else
        std::printf("container:        FCC2 (%zu chunks)\n",
                    d.chunkSizes.size());
    std::printf("weights:          {%u, %u, %u}\n", d.weights.w1,
                d.weights.w2, d.weights.w3);
    std::printf("flows (time-seq): %zu\n", d.timeSeq.size());
    std::printf("short templates:  %zu\n", d.shortTemplates.size());
    std::printf("long templates:   %zu\n", d.longTemplates.size());
    std::printf("addresses:        %zu\n", d.addresses.size());
    uint64_t packets = 0;
    for (const auto &rec : d.timeSeq)
        packets += rec.isLong
            ? d.longTemplates[rec.templateIndex].sValues.size()
            : d.shortTemplates[rec.templateIndex].size();
    std::printf("packets encoded:  %llu\n",
                static_cast<unsigned long long>(packets));
}

} // namespace

int
main(int argc, char **argv)
{
    codec::fcc::FccConfig cfg;
    int arg = 1;
    while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
        if (std::strcmp(argv[arg], "--threshold") == 0 &&
            arg + 1 < argc) {
            cfg.rule.percent = std::atof(argv[arg + 1]);
            arg += 2;
        } else if (std::strcmp(argv[arg], "--cutoff") == 0 &&
                   arg + 1 < argc) {
            cfg.shortLimit = static_cast<uint32_t>(
                std::atoi(argv[arg + 1]));
            arg += 2;
        } else if (std::strcmp(argv[arg], "--threads") == 0 &&
                   arg + 1 < argc) {
            int threads = std::atoi(argv[arg + 1]);
            if (threads < 0) {
                std::fprintf(stderr,
                             "error: --threads must be >= 0\n");
                return 2;
            }
            cfg.threads = static_cast<uint32_t>(threads);
            arg += 2;
        } else {
            return usage(argv[0]);
        }
    }
    if (arg >= argc)
        return usage(argv[0]);
    std::string command = argv[arg++];

    try {
        if (command == "compress" && arg + 1 < argc) {
            auto stats = codec::fcc::compressTshFile(
                argv[arg], argv[arg + 1], cfg);
            std::printf("%llu packets, %llu flows: %llu -> %llu "
                        "bytes (%.2f%%)\n",
                        static_cast<unsigned long long>(
                            stats.packets),
                        static_cast<unsigned long long>(stats.flows),
                        static_cast<unsigned long long>(
                            stats.inputBytes),
                        static_cast<unsigned long long>(
                            stats.outputBytes),
                        100.0 * stats.ratio());
            return 0;
        }
        if (command == "decompress" && arg + 1 < argc) {
            auto stats = codec::fcc::decompressToTshFile(
                argv[arg], argv[arg + 1], cfg);
            std::printf("%llu flows -> %llu packets, %llu bytes\n",
                        static_cast<unsigned long long>(stats.flows),
                        static_cast<unsigned long long>(
                            stats.packets),
                        static_cast<unsigned long long>(
                            stats.outputBytes));
            return 0;
        }
        if (command == "info" && arg < argc) {
            std::string path = argv[arg];
            if (hasSuffix(path, ".fcc"))
                infoFcc(path);
            else
                infoTrace(loadAnyTrace(path));
            return 0;
        }
        if (command == "convert" && arg + 1 < argc) {
            trace::Trace tr = loadAnyTrace(argv[arg]);
            saveAnyTrace(tr, argv[arg + 1]);
            std::printf("converted %zu packets\n", tr.size());
            return 0;
        }
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return usage(argv[0]);
}
