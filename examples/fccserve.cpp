/**
 * @file
 * fccserve — serve a catalog of sealed FCC archives over a socket,
 * and the matching command-line client.
 *
 *   fccserve [options] serve <dir | a.fcc b.fcc ...>
 *   fccserve [options] ping
 *   fccserve [options] list
 *   fccserve [options] query 'EXPR' [<out>]
 *   fccserve [options] agg  KIND 'EXPR'
 *
 * `serve` opens every archive once, then answers filter and
 * aggregate queries for any number of concurrent clients — each
 * connection is one thread-pool job against the shared immutable
 * catalog. It runs until SIGINT/SIGTERM. The remaining subcommands
 * are the client side: they speak the length-prefixed binary
 * protocol of docs/PROTOCOL.md to a running server. A `query` with
 * an <out> file writes the extracted packets through the normal
 * trace sinks, so the bytes are directly comparable with a local
 * `fccquery --expr` run over the same archives.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "query/server.hpp"
#include "trace/source.hpp"
#include "util/error.hpp"

#include "tools/cli.hpp"

using namespace fcc;

namespace {

query::QueryServer *gServer = nullptr;
volatile std::sig_atomic_t gReload = 0;

extern "C" void
onSignal(int)
{
    if (gServer != nullptr)
        gServer->stop();  // async-signal-safe: atomic + pipe write
}

extern "C" void
onReload(int)
{
    // SIGHUP: stop the accept loop; main reopens the catalog and
    // serves again — how a live fccd output directory is picked up.
    gReload = 1;
    if (gServer != nullptr)
        gServer->stop();
}

bool
isDirectory(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void
printCatalogStats(const query::CatalogQueryStats &stats)
{
    std::printf("archives:       %llu (%llu pruned)\n",
                static_cast<unsigned long long>(stats.archives),
                static_cast<unsigned long long>(
                    stats.archivesPruned));
    std::printf("chunks decoded: %llu / %llu\n",
                static_cast<unsigned long long>(
                    stats.chunksDecoded),
                static_cast<unsigned long long>(stats.chunksTotal));
    std::printf("bytes read:     %llu / %llu (%.1f%%)\n",
                static_cast<unsigned long long>(stats.bytesRead),
                static_cast<unsigned long long>(stats.fileBytes),
                stats.fileBytes
                    ? 100.0 *
                          static_cast<double>(stats.bytesRead) /
                          static_cast<double>(stats.fileBytes)
                    : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketText = "unix:/tmp/fccserve.sock";
    codec::fcc::FccConfig cfg;
    query::ServerConfig serverCfg;
    trace::TraceFormatSpec outFormat;
    bool countOnly = false;
    bool fullDecode = false;
    uint32_t topK = 10;

    cli::FlagSet flags(
        "[options] <serve|ping|list|query|agg> ...",
        "Serve a catalog of sealed FCC archives over a Unix or TCP\n"
        "socket (binary protocol: docs/PROTOCOL.md), or talk to a\n"
        "running server.");
    flags.epilog(
        "subcommands:\n"
        "  serve <dir | a.fcc b.fcc ...>  run the server (until\n"
        "                                 SIGINT/SIGTERM)\n"
        "  ping                           round-trip an empty "
        "request\n"
        "  list                           the server's archives\n"
        "  query 'EXPR' [<out>]           filter query "
        "(docs/QUERY.md\n"
        "                                 grammar); writes <out> "
        "unless\n"
        "                                 --count\n"
        "  agg KIND 'EXPR'                flow-counts|"
        "byte-histogram|\n"
        "                                 top-talkers aggregate");
    flags.add("--socket", "E",
              "endpoint: unix:/path or tcp:host:port\n"
              "(default unix:/tmp/fccserve.sock; serve on\n"
              "tcp:host:0 picks an ephemeral port and\n"
              "prints it)",
              [&](const char *v) { socketText = v; });
    flags.add("--threads", "N",
              "serve: pool workers = concurrent requests,\n"
              "0 = all cores (default)",
              [&](const char *v) {
                  serverCfg.threads = static_cast<uint32_t>(
                      cli::parseUnsigned("--threads", v, 0,
                                         UINT32_MAX));
                  cfg.threads = serverCfg.threads;
              });
    flags.add("--count",
              "query: counts only, no output file",
              [&] { countOnly = true; });
    flags.add("--no-index",
              "query: force the servers' full-decode path",
              [&] { fullDecode = true; });
    flags.add("--top", "K",
              "agg top-talkers: row budget (default 10)",
              [&](const char *v) {
                  topK = static_cast<uint32_t>(cli::parseUnsigned(
                      "--top", v, 1, UINT32_MAX));
              });
    flags.add("--out-format", "F",
              "query: auto|tsh|pcap|pcapng (default auto:\n"
              "picked from the <out> extension)",
              [&](const char *v) {
                  outFormat = trace::parseTraceFormatSpec(v);
              });

    cli::ParseResult parsed = flags.parse(argc, argv);
    if (parsed.exit)
        return parsed.code;
    int arg = parsed.next;
    if (arg >= argc) {
        flags.printHelp(argv[0], stderr);
        return 2;
    }
    std::string command = argv[arg++];

    try {
        util::SocketEndpoint endpoint =
            util::SocketEndpoint::parse(socketText);

        if (command == "serve") {
            if (arg >= argc) {
                flags.printHelp(argv[0], stderr);
                return 2;
            }
            std::signal(SIGINT, onSignal);
            std::signal(SIGTERM, onSignal);
            std::signal(SIGHUP, onReload);
            uint64_t served = 0;
            for (;;) {
                // A directory serves what its CATALOG lists (an
                // fccd producer's durable set), falling back to a
                // *.fcc scan; explicit paths serve as given.
                query::ArchiveCatalog catalog =
                    (arg + 1 == argc && isDirectory(argv[arg]))
                        ? query::ArchiveCatalog::fromCatalogFile(
                              argv[arg], cfg)
                        : query::ArchiveCatalog::fromPaths(
                              std::vector<std::string>(
                                  argv + arg, argv + argc),
                              cfg);
                query::QueryServer server(catalog, endpoint,
                                          serverCfg);
                gServer = &server;
                std::printf("serving %zu archive(s) on %s\n",
                            catalog.size(),
                            server.endpoint().str().c_str());
                std::fflush(stdout);
                server.serve();
                gServer = nullptr;
                served += server.requestsServed();
                if (gReload == 0)
                    break;
                gReload = 0;
                std::printf("reloading catalog (SIGHUP)\n");
                std::fflush(stdout);
            }
            std::printf("stopped after %llu request(s)\n",
                        static_cast<unsigned long long>(served));
            return 0;
        }

        query::QueryClient client(endpoint);

        if (command == "ping") {
            client.ping();
            std::printf("ok\n");
            return 0;
        }
        if (command == "list") {
            std::vector<query::ArchiveInfo> archives =
                client.listArchives();
            std::printf("%zu archive(s)\n", archives.size());
            for (const query::ArchiveInfo &info : archives)
                std::printf("  %s: %llu bytes, %s, %llu chunks\n",
                            info.path.c_str(),
                            static_cast<unsigned long long>(
                                info.fileBytes),
                            info.hasIndex ? "indexed"
                                          : "no index",
                            static_cast<unsigned long long>(
                                info.chunks));
            return 0;
        }
        if (command == "query" && arg < argc) {
            std::string exprText = argv[arg++];
            bool wantOut = !countOnly;
            if (wantOut && arg >= argc) {
                flags.printHelp(argv[0], stderr);
                return 2;
            }
            query::QueryResponse resp =
                client.query(exprText, countOnly, fullDecode);
            if (wantOut) {
                auto sink =
                    trace::openTraceSink(argv[arg], outFormat);
                sink->write(std::span<const trace::PacketRecord>(
                    resp.records.data(), resp.records.size()));
                sink->close();
            }
            std::printf(
                "matched:        %llu packets in %llu flows\n",
                static_cast<unsigned long long>(resp.packets),
                static_cast<unsigned long long>(
                    resp.stats.flowsMatched));
            printCatalogStats(resp.stats);
            return 0;
        }
        if (command == "agg" && arg + 1 < argc) {
            query::AggregateRequest req;
            req.kind = query::parseAggregateKind(argv[arg]);
            req.topK = topK;
            req.expr = query::parseExpr(argv[arg + 1]);
            query::AggregateResult result = client.aggregate(
                req.kind, req.topK, argv[arg + 1]);
            std::fputs(
                query::renderAggregate(result, req).c_str(),
                stdout);
            std::printf(
                "bytes touched:  %llu / %llu (reconstruction "
                "would read %llu)\n",
                static_cast<unsigned long long>(
                    result.stats.bytesTouched),
                static_cast<unsigned long long>(
                    result.stats.fileBytes),
                static_cast<unsigned long long>(
                    result.stats.reconstructBytes));
            return 0;
        }
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    flags.printHelp(argv[0], stderr);
    return 2;
}
