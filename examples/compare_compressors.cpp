/**
 * @file
 * Compare all four compression methods on a trace — the paper's §5
 * study as a command-line tool.
 *
 * Usage:
 *   ./build/examples/compare_compressors [--threads N]
 *       [--container fcc1|fcc2|fcc3] [--backend store|deflate|range]
 *       [capture.file]
 *
 * The input format (TSH, pcap, pcapng, each optionally gzip'd) is
 * auto-detected from magic bytes via the trace I/O subsystem;
 * --threads sets the FCC pipeline's worker count (0 = all cores,
 * the default — the compressed bytes are identical either way).
 * --container/--backend pick the FCC wire container for the "fcc"
 * row; independent of that, extra rows report the columnar FCC3
 * container under every entropy backend, next to the FCC2 baseline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "codec/compressor.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

#include "tools/cli.hpp"

using namespace fcc;

namespace {

trace::Trace
loadTrace(const char *file)
{
    if (file == nullptr) {
        std::printf("no input file given; using a synthetic web "
                    "trace (60 s)\n");
        trace::WebGenConfig cfg;
        cfg.seed = 7;
        cfg.durationSec = 60.0;
        cfg.flowsPerSec = 80.0;
        trace::WebTrafficGenerator gen(cfg);
        return gen.generate();
    }
    trace::DetectedFormat detected;
    auto src = trace::openTraceSource(file, {}, &detected);
    std::printf("input format: %s (auto-detected)\n",
                trace::traceFormatName(detected.format,
                                       detected.gzip).c_str());
    return trace::readAllPackets(*src);
}

} // namespace

int
main(int argc, char **argv)
{
    codec::fcc::FccConfig fccCfg;

    cli::FlagSet flags(
        "[options] [trace.pcap|trace.tsh]",
        "Compare the paper's four compression methods (§5) on a\n"
        "trace; with no input file, a deterministic synthetic web\n"
        "trace is used. Input format (TSH, pcap, pcapng, each\n"
        "optionally gzip'd) is auto-detected.");
    flags.add("--threads", "N",
              "FCC pipeline workers, 0 = all cores\n"
              "(default; compressed bytes never depend\n"
              "on it)",
              [&](const char *v) {
                  fccCfg.threads = static_cast<uint32_t>(
                      cli::parseUnsigned("--threads", v, 0,
                                         UINT32_MAX));
              });
    flags.add("--container", "FMT",
              "fcc1|fcc2|fcc3 wire container of the\n"
              "\"fcc\" row (default fcc2)",
              [&](const char *v) {
                  fccCfg.container =
                      codec::fcc::parseContainerName(v);
              });
    flags.add("--backend", "NAME",
              "store|deflate|range — FCC3 per-column\n"
              "entropy backend (default deflate)",
              [&](const char *v) {
                  fccCfg.backend =
                      codec::backend::parseBackendName(v);
              });
    flags.add("--fidelity", "TIER",
              "exact|quantized|header|flow — fidelity tier\n"
              "of the fcc rows (default exact; lossy tiers\n"
              "need --container fcc3)",
              [&](const char *v) {
                  fccCfg.fidelity =
                      codec::fcc::parseFidelityName(v);
              });
    flags.add("--quantum-us", "N",
              "timestamp grid of the quantized tier in\n"
              "microseconds (default 1000)",
              [&](const char *v) {
                  fccCfg.quantumUs = cli::parseUnsigned(
                      "--quantum-us", v, 1, UINT64_MAX);
              });

    cli::ParseResult parsed = flags.parse(argc, argv);
    if (parsed.exit)
        return parsed.code;
    int arg = parsed.next;

    // A lossy tier needs the columnar container; the "fcc" row
    // keeps the library default (fcc2) otherwise.
    if (fccCfg.fidelity != codec::fcc::Fidelity::Exact)
        fccCfg.container = codec::fcc::ContainerFormat::Fcc3;

    trace::Trace input;
    try {
        fccCfg.validate();
        input = loadTrace(arg < argc ? argv[arg] : nullptr);
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    if (!input.isTimeOrdered())
        input.sortByTime();

    std::printf("trace: %zu packets, %.1f s, %.2f MB as TSH\n\n",
                input.size(), input.durationSec(),
                static_cast<double>(input.size() *
                                    trace::tshRecordBytes) /
                    1e6);

    std::printf("%-12s %14s %9s %9s %s\n", "method", "bytes",
                "ratio", "lossless", "notes");
    for (const auto &codec : codec::makeAllCodecs(fccCfg)) {
        auto report = codec::measure(*codec, input);
        const char *note = "";
        if (report.codec == "gzip")
            note = "deflate on the TSH bytes";
        else if (report.codec == "vj")
            note = "RFC1144 deltas, 3B CID + 2B time";
        else if (report.codec == "peuhkuri")
            note = "flow table + per-packet records";
        else if (report.codec == "fcc")
            note = "flow clustering (this paper)";
        std::printf("%-12s %14llu %8.2f%% %9s %s\n",
                    report.codec.c_str(),
                    static_cast<unsigned long long>(
                        report.compressedBytes),
                    100.0 * report.ratio(),
                    codec->lossless() ? "yes" : "no", note);
    }

    // The columnar container under each entropy backend, against
    // the same denominator as the rows above.
    const codec::backend::EntropyBackend backends[] = {
        codec::backend::EntropyBackend::Store,
        codec::backend::EntropyBackend::Deflate,
        codec::backend::EntropyBackend::Range,
    };
    for (auto backend : backends) {
        codec::fcc::FccConfig cfg = fccCfg;
        cfg.container = codec::fcc::ContainerFormat::Fcc3;
        cfg.backend = backend;
        codec::fcc::FccTraceCompressor fcc3(cfg);
        auto report = codec::measure(fcc3, input);
        std::string name =
            std::string("fcc3+") + codec::backend::backendName(
                                       backend);
        std::printf("%-12s %14llu %8.2f%% %9s %s\n", name.c_str(),
                    static_cast<unsigned long long>(
                        report.compressedBytes),
                    100.0 * report.ratio(), "no",
                    "columnar container, per-column codecs");
    }
    return 0;
}
