/**
 * @file
 * Property-based round-trip harness over the adversarial scenario
 * matrix (trace/scenario_gen.hpp).
 *
 * For every scenario the core property is cross-cell byte
 * exactness: the codec is lossy, so the invariant is not original ≡
 * reconstructed but that every (container × backend × index ×
 * thread-count) cell reconstructs the *same* TSH bytes — FCC2 and
 * FCC3 with equal chunkRecords, any entropy backend, indexed or
 * not, at 1/2/4/8 threads. On top of that: compression itself is
 * thread-count invariant, indexed queries match full decodes
 * bit-exactly, and a seeded fuzz sweep drives every generator
 * through its parameter edges (0 flows, 1 flow, max rate,
 * pathological tails).
 *
 * Set FCC_TEST_SMOKE=1 to shrink trace sizes and fuzz seeds (used
 * by the sanitizer CI jobs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/complexity.hpp"
#include "codec/backend/backend.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "query/query.hpp"
#include "trace/scenario_gen.hpp"
#include "trace/tsh.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
using backendEnum = fcc::codec::backend::EntropyBackend;

namespace {

/** Explicit TSH spec for the raw 44-byte record fixtures. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

bool
smokeTests()
{
    const char *env = std::getenv("FCC_TEST_SMOKE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

using fcc::test::tempPath;

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

/**
 * Test-sized scenario config: the per-kind shape from
 * scenarioDefaults() with flow counts small enough that the full
 * 5-cell × 4-thread matrix stays fast.
 */
trace::ScenarioConfig
scenarioTestConfig(trace::ScenarioKind kind, uint64_t seed)
{
    trace::ScenarioConfig cfg = trace::scenarioDefaults(kind, seed);
    cfg.durationSec = 4.0;
    switch (kind) {
    case trace::ScenarioKind::SynFlood: cfg.flows = 1200; break;
    case trace::ScenarioKind::PortScan: cfg.flows = 800; break;
    case trace::ScenarioKind::Elephants:
        cfg.flows = 48;
        cfg.maxFlowLen = 600;
        break;
    case trace::ScenarioKind::Incast:
        cfg.flows = 24;
        cfg.incastRounds = 5;
        break;
    case trace::ScenarioKind::Reordering: cfg.flows = 300; break;
    case trace::ScenarioKind::LossStorm: cfg.flows = 120; break;
    case trace::ScenarioKind::MixedTail:
        cfg.flows = 400;
        cfg.maxFlowLen = 300;
        break;
    }
    if (smokeTests())
        cfg.flows = std::max<uint32_t>(1, cfg.flows / 8);
    return cfg;
}

bool
samePacket(const trace::PacketRecord &a, const trace::PacketRecord &b)
{
    auto key = [](const trace::PacketRecord &p) {
        return std::tuple(p.timestampNs, p.srcIp, p.dstIp, p.srcPort,
                          p.dstPort, p.protocol, p.tcpFlags,
                          p.payloadBytes, p.seq, p.ack, p.window,
                          p.ipId);
    };
    return key(a) == key(b);
}

bool
sameTrace(const trace::Trace &a, const trace::Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!samePacket(a.packets()[i], b.packets()[i]))
            return false;
    return true;
}

/** One compression cell of the matrix. */
struct Cell
{
    const char *name;
    fccc::ContainerFormat container;
    backendEnum backend;
    bool index;
};

std::vector<Cell>
matrixCells()
{
    return {
        {"fcc2", fccc::ContainerFormat::Fcc2, backendEnum::Deflate,
         false},
        {"fcc3-store", fccc::ContainerFormat::Fcc3,
         backendEnum::Store, false},
        {"fcc3-deflate", fccc::ContainerFormat::Fcc3,
         backendEnum::Deflate, false},
        {"fcc3-range", fccc::ContainerFormat::Fcc3,
         backendEnum::Range, false},
        {"fcc3-indexed", fccc::ContainerFormat::Fcc3,
         backendEnum::Deflate, true},
    };
}

fccc::FccConfig
cellConfig(const Cell &cell, uint32_t threads)
{
    fccc::FccConfig cfg;
    cfg.container = cell.container;
    cfg.backend = cell.backend;
    cfg.index = cell.index;
    cfg.threads = threads;
    // Small chunks so every scenario spans several chunks and the
    // elephant flows cross chunk boundaries.
    cfg.chunkRecords = 64;
    return cfg;
}

} // namespace

TEST(ScenarioGen, DeterministicAndTimeOrdered)
{
    for (trace::ScenarioKind kind : trace::allScenarios()) {
        SCOPED_TRACE(trace::scenarioName(kind));
        trace::ScenarioConfig cfg = scenarioTestConfig(kind, 77);
        trace::ScenarioGenerator gen(cfg);
        trace::Trace first = gen.generate();
        trace::ScenarioInfo info = gen.info();

        EXPECT_TRUE(first.isTimeOrdered());
        EXPECT_GT(first.size(), 0u);
        EXPECT_EQ(info.packets, first.size());
        EXPECT_GT(info.flows, 0u);
        EXPECT_GT(info.maxFlowPackets, 0u);

        // Same generator again and a fresh generator: identical.
        trace::Trace again = gen.generate();
        EXPECT_TRUE(sameTrace(first, again));
        trace::ScenarioGenerator fresh(cfg);
        EXPECT_TRUE(sameTrace(first, fresh.generate()));

        // A different seed changes the trace.
        cfg.seed = 78;
        trace::ScenarioGenerator other(cfg);
        EXPECT_FALSE(sameTrace(first, other.generate()));
    }
}

TEST(ScenarioGen, ScenarioShapesHold)
{
    {
        auto cfg =
            scenarioTestConfig(trace::ScenarioKind::SynFlood, 5);
        trace::ScenarioGenerator gen(cfg);
        trace::Trace t = gen.generate();
        // One packet per flow, all SYNs.
        EXPECT_EQ(gen.info().maxFlowPackets, 1u);
        EXPECT_EQ(t.size(), cfg.flows);
        for (const auto &pkt : t.packets()) {
            EXPECT_TRUE(pkt.hasSyn());
            EXPECT_FALSE(pkt.hasAck());
            EXPECT_EQ(pkt.payloadBytes, 0u);
        }
    }
    {
        auto cfg =
            scenarioTestConfig(trace::ScenarioKind::Elephants, 5);
        trace::ScenarioGenerator gen(cfg);
        trace::Trace t = gen.generate();
        // The elephants outlive most of the capture and dwarf the
        // paper's 50-packet short-flow limit.
        EXPECT_GT(gen.info().maxFlowPackets, 100u);
        EXPECT_GT(t.durationSec(), cfg.durationSec * 0.8);
    }
    {
        auto cfg =
            scenarioTestConfig(trace::ScenarioKind::Reordering, 5);
        trace::ScenarioGenerator gen(cfg);
        gen.generate();
        EXPECT_GT(gen.info().reorderedPackets, 0u);
    }
    {
        auto cfg =
            scenarioTestConfig(trace::ScenarioKind::LossStorm, 5);
        trace::ScenarioGenerator gen(cfg);
        gen.generate();
        EXPECT_GT(gen.info().retransmissions, 0u);
    }
}

TEST(ScenarioGen, WriteToSinkMatchesGenerate)
{
    for (trace::ScenarioKind kind :
         {trace::ScenarioKind::SynFlood,
          trace::ScenarioKind::MixedTail}) {
        SCOPED_TRACE(trace::scenarioName(kind));
        trace::ScenarioConfig cfg = scenarioTestConfig(kind, 11);
        trace::ScenarioGenerator gen(cfg);

        std::string viaSink = tempPath("scenario_sink.tsh");
        auto sink = trace::openTraceSink(viaSink);
        gen.writeTo(*sink);

        std::string viaTrace = tempPath("scenario_trace.tsh");
        trace::writeTshFile(gen.generate(), viaTrace);

        EXPECT_EQ(readFileBytes(viaSink), readFileBytes(viaTrace));
        std::remove(viaSink.c_str());
        std::remove(viaTrace.c_str());
    }
}

TEST(ScenarioGen, RejectsBadParameters)
{
    trace::ScenarioConfig cfg;
    cfg.durationSec = 0;
    EXPECT_THROW(trace::ScenarioGenerator{cfg}, util::Error);
    cfg = {};
    cfg.tailAlpha = 0;
    EXPECT_THROW(trace::ScenarioGenerator{cfg}, util::Error);
    cfg = {};
    cfg.reorderFraction = 1.5;
    EXPECT_THROW(trace::ScenarioGenerator{cfg}, util::Error);
    cfg = {};
    cfg.mss = 100;
    EXPECT_THROW(trace::ScenarioGenerator{cfg}, util::Error);
    cfg = {};
    cfg.serverCount = 0;
    EXPECT_THROW(trace::ScenarioGenerator{cfg}, util::Error);
    EXPECT_THROW(trace::parseScenarioName("nosuch"), util::Error);
    EXPECT_EQ(trace::parseScenarioName("synflood"),
              trace::ScenarioKind::SynFlood);
}

/**
 * The acceptance property: every (container × backend × index ×
 * thread-count) cell reconstructs byte-identical TSH output, and
 * compression is thread-count invariant per cell.
 */
TEST(ScenarioRoundTrip, MatrixCellsAreByteExact)
{
    const std::vector<uint32_t> threadCounts = {1, 2, 4, 8};
    for (trace::ScenarioKind kind : trace::allScenarios()) {
        SCOPED_TRACE(trace::scenarioName(kind));
        trace::ScenarioConfig scfg = scenarioTestConfig(kind, 2005);
        trace::ScenarioGenerator gen(scfg);
        trace::Trace original = gen.generate();

        std::string tshIn = tempPath("matrix_in.tsh");
        trace::writeTshFile(original, tshIn);

        std::vector<uint8_t> reference;  // first cell's TSH bytes
        for (const Cell &cell : matrixCells()) {
            SCOPED_TRACE(cell.name);
            std::vector<uint8_t> compressedRef;
            for (uint32_t threads : threadCounts) {
                SCOPED_TRACE(threads);
                fccc::FccConfig cfg = cellConfig(cell, threads);
                std::string fccOut = tempPath("matrix_out.fcc");
                std::string tshBack = tempPath("matrix_back.tsh");

                auto stats =
                    fccc::compressTraceFile(tshIn, fccOut, cfg, kTsh);
                EXPECT_EQ(stats.packets, original.size());

                // Compressed bytes are thread-count invariant.
                std::vector<uint8_t> compressed =
                    readFileBytes(fccOut);
                if (compressedRef.empty())
                    compressedRef = compressed;
                else
                    EXPECT_EQ(compressed, compressedRef);

                // Reconstruction is identical across every cell.
                fccc::decompressTraceFile(fccOut, tshBack, cfg, kTsh);
                std::vector<uint8_t> back =
                    readFileBytes(tshBack);
                EXPECT_EQ(back.size(),
                          original.size() * trace::tshRecordBytes);
                if (reference.empty())
                    reference = back;
                else
                    EXPECT_EQ(back, reference);

                std::remove(fccOut.c_str());
                std::remove(tshBack.c_str());
            }
        }
        std::remove(tshIn.c_str());
    }
}

/**
 * Regression: the §4 flush and the query merge used to order
 * equal-timestamp packets by heap insertion order, which depends on
 * the chunk batch size — i.e. on the thread count. A SYN flood
 * squeezed into a near-zero window makes microsecond-timestamp
 * collisions certain; decompression must still be byte-identical at
 * every thread count (found by the scenario matrix; fixed with the
 * packetCanonicalLess total order).
 */
TEST(ScenarioRoundTrip, TiedTimestampsDecodeThreadInvariant)
{
    trace::ScenarioConfig scfg =
        trace::scenarioDefaults(trace::ScenarioKind::SynFlood, 31337);
    scfg.flows = 2000;
    scfg.durationSec = 0.001;  // ~2 packets per microsecond
    trace::ScenarioGenerator gen(scfg);
    trace::Trace original = gen.generate();

    std::string tshIn = tempPath("ties_in.tsh");
    trace::writeTshFile(original, tshIn);
    for (const Cell &cell : matrixCells()) {
        SCOPED_TRACE(cell.name);
        std::vector<uint8_t> reference;
        for (uint32_t threads : {1u, 2u, 8u}) {
            SCOPED_TRACE(threads);
            fccc::FccConfig cfg = cellConfig(cell, threads);
            std::string fccOut = tempPath("ties_out.fcc");
            std::string tshBack = tempPath("ties_back.tsh");
            fccc::compressTraceFile(tshIn, fccOut, cfg, kTsh);
            fccc::decompressTraceFile(fccOut, tshBack, cfg, kTsh);
            std::vector<uint8_t> back = readFileBytes(tshBack);
            if (reference.empty())
                reference = back;
            else
                EXPECT_EQ(back, reference);
            std::remove(fccOut.c_str());
            std::remove(tshBack.c_str());
        }
    }
    std::remove(tshIn.c_str());
}

/** Indexed queries must equal full decodes on hostile input. */
TEST(ScenarioRoundTrip, IndexedQueryMatchesFullDecode)
{
    for (trace::ScenarioKind kind : trace::allScenarios()) {
        SCOPED_TRACE(trace::scenarioName(kind));
        trace::ScenarioConfig scfg = scenarioTestConfig(kind, 404);
        trace::ScenarioGenerator gen(scfg);
        trace::Trace original = gen.generate();

        std::string tshIn = tempPath("query_in.tsh");
        std::string fccOut = tempPath("query_out.fcc");
        trace::writeTshFile(original, tshIn);
        fccc::FccConfig cfg =
            cellConfig(matrixCells().back(), 4);  // fcc3-indexed
        fccc::compressTraceFile(tshIn, fccOut, cfg, kTsh);

        query::FccArchive archive(fccOut, cfg);
        ASSERT_TRUE(archive.hasIndex());

        // matchAll, a time window, and a server-address predicate.
        trace::Trace full;
        {
            trace::CollectTraceSink sink(full);
            auto stats = archive.run(query::Predicate{}, sink, true);
            EXPECT_EQ(stats.packetsMatched, original.size());
        }
        std::vector<query::Predicate> preds(1);
        uint64_t t0 = full.packets().front().timestampUs();
        uint64_t t1 = full.packets().back().timestampUs();
        preds.push_back(query::Predicate{});
        preds.back().timeUs = {t0 + (t1 - t0) / 4,
                               t0 + (t1 - t0) / 2};
        std::map<uint32_t, uint64_t> dstCounts;
        for (const auto &pkt : full.packets())
            ++dstCounts[pkt.dstIp];
        uint32_t topDst = 0;
        uint64_t topCount = 0;
        for (auto [ip, count] : dstCounts)
            if (count > topCount) {
                topDst = ip;
                topCount = count;
            }
        preds.push_back(query::Predicate{});
        preds.back().serverIp = topDst;
        preds.push_back(query::Predicate{});
        preds.back().minFlowPackets = 2;

        for (size_t i = 0; i < preds.size(); ++i) {
            SCOPED_TRACE(i);
            trace::Trace indexed, decoded;
            trace::CollectTraceSink indexedSink(indexed);
            trace::CollectTraceSink decodedSink(decoded);
            auto istats = archive.run(preds[i], indexedSink, false);
            archive.run(preds[i], decodedSink, true);
            EXPECT_TRUE(istats.usedIndex);
            EXPECT_TRUE(sameTrace(indexed, decoded));
        }

        std::remove(tshIn.c_str());
        std::remove(fccOut.c_str());
    }
}

/** Complexity metrics separate the scenarios as designed. */
TEST(ScenarioComplexity, MetricsAreSane)
{
    auto flood = scenarioTestConfig(trace::ScenarioKind::SynFlood, 9);
    trace::ScenarioGenerator floodGen(flood);
    auto floodCx = analysis::measureComplexity(floodGen.generate());
    EXPECT_EQ(floodCx.packets, flood.flows);
    // Spoofed sources: almost every packet is a fresh pair, so the
    // pair distribution is near-uniform and dense.
    EXPECT_GT(floodCx.distinctPairs, flood.flows * 9ull / 10);
    EXPECT_GT(floodCx.pairEntropyBits, 8.0);

    auto eleph =
        scenarioTestConfig(trace::ScenarioKind::Elephants, 9);
    trace::ScenarioGenerator elephGen(eleph);
    auto elephCx = analysis::measureComplexity(elephGen.generate());
    // Few pairs carry most packets: much lower non-temporal entropy.
    EXPECT_LT(elephCx.pairEntropyBits, floodCx.pairEntropyBits);
    // Ordered elephants have temporal structure a compressor
    // exploits; the measure must see it.
    EXPECT_GT(elephCx.temporalBitsPerPacket(), 0.0);

    // Empty trace: all zeros, no crash.
    auto emptyCx = analysis::measureComplexity(trace::Trace{});
    EXPECT_EQ(emptyCx.packets, 0u);
    EXPECT_EQ(emptyCx.distinctPairs, 0u);
}

/**
 * Randomized-seed sweep across every generator's parameter edges: 0
 * flows, 1 flow, max rate, pathological tails, full reorder/loss.
 * Every edge must generate, stay time-ordered, and round-trip
 * (packet-count preserving) through FCC2 and FCC3-range.
 */
TEST(ScenarioFuzz, ParameterEdgesRoundTrip)
{
    const uint32_t seeds = smokeTests() ? 2 : 5;
    for (trace::ScenarioKind kind : trace::allScenarios()) {
        for (uint32_t s = 0; s < seeds; ++s) {
            uint64_t seed = 1000 + 71 * s;
            std::vector<trace::ScenarioConfig> edges;
            auto base = trace::scenarioDefaults(kind, seed);
            base.durationSec = 1.0;

            auto add = [&](auto mutate) {
                trace::ScenarioConfig cfg = base;
                mutate(cfg);
                edges.push_back(cfg);
            };
            add([](auto &c) { c.flows = 0; });
            add([](auto &c) { c.flows = 1; });
            // Max rate: many flows in a near-zero window.
            add([](auto &c) {
                c.flows = 600;
                c.durationSec = 0.01;
            });
            // Pathological tails, extreme knobs, tiny flows.
            add([](auto &c) {
                c.flows = 80;
                c.tailAlpha = 0.3;
                c.maxFlowLen = 1;
                c.reorderFraction = 1.0;
                c.lossFraction = 1.0;
                c.incastRounds = 1;
            });
            add([](auto &c) {
                c.flows = 80;
                c.tailAlpha = 3.0;
                c.serverCount = 1;
                c.clientCount = 1;
                c.incastRounds = 0;
            });

            for (size_t e = 0; e < edges.size(); ++e) {
                SCOPED_TRACE(std::string(trace::scenarioName(kind)) +
                             " seed=" + std::to_string(seed) +
                             " edge=" + std::to_string(e));
                trace::ScenarioGenerator gen(edges[e]);
                trace::Trace t = gen.generate();
                EXPECT_TRUE(t.isTimeOrdered());
                if (edges[e].flows == 0)
                    EXPECT_EQ(t.size(), 0u);

                std::string tshIn = tempPath("fuzz_in.tsh");
                trace::writeTshFile(t, tshIn);
                for (auto container :
                     {fccc::ContainerFormat::Fcc2,
                      fccc::ContainerFormat::Fcc3}) {
                    fccc::FccConfig cfg;
                    cfg.container = container;
                    cfg.backend = backendEnum::Range;
                    cfg.threads = 2;
                    cfg.chunkRecords = 32;
                    std::string fccOut = tempPath("fuzz_out.fcc");
                    std::string tshBack =
                        tempPath("fuzz_back.tsh");
                    auto stats =
                        fccc::compressTraceFile(tshIn, fccOut, cfg, kTsh);
                    EXPECT_EQ(stats.packets, t.size());
                    auto dstats = fccc::decompressTraceFile(
                        fccOut, tshBack, cfg, kTsh);
                    EXPECT_EQ(dstats.packets, t.size());
                    std::remove(fccOut.c_str());
                    std::remove(tshBack.c_str());
                }
                std::remove(tshIn.c_str());
            }
        }
    }
}
