/**
 * @file
 * Query-expression tests: the grammar (parse/print round trips,
 * malformed input rejection, validation of inverted ranges), the
 * tri-state flow evaluation, and the {may, must} chunk planner —
 * whose soundness is checked against brute-forced random chunk
 * summaries (every flow a chunk could hold that matches the
 * expression must land in a planned chunk, and `must` may only be
 * set when every flow in the chunk matches).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <bit>

#include "codec/fcc/index.hpp"
#include "query/expr.hpp"
#include "query/query.hpp"
#include "trace/packet.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

using namespace fcc;
using query::Expr;
using FlowView = query::Expr::FlowView;

namespace {

/** Parse + assert the canonical text form. */
void
expectCanonical(const std::string &text,
                const std::string &canonical)
{
    Expr parsed = query::parseExpr(text);
    EXPECT_EQ(parsed.str(), canonical) << "input: " << text;
    // The canonical form is a fixed point of parse∘print.
    EXPECT_EQ(query::parseExpr(parsed.str()).str(), parsed.str());
}

/** A random expression tree, leaves biased toward matchable data. */
Expr
randomExpr(util::Rng &rng, int depth)
{
    if (depth <= 0 || rng.uniformInt(0, 3) == 0) {
        switch (rng.uniformInt(0, 5)) {
        case 0:
            return Expr::matchAll();
        case 1:
            return Expr::serverIs(static_cast<uint32_t>(
                rng.uniformInt(0, UINT32_MAX)));
        case 2: {
            uint32_t bits =
                static_cast<uint32_t>(rng.uniformInt(1, 32));
            return Expr::serverIn(
                static_cast<uint32_t>(
                    rng.uniformInt(0, UINT32_MAX)),
                bits);
        }
        case 3: {
            uint64_t t0 = rng.uniformInt(0, 50'000'000);
            uint64_t t1 = rng.uniformInt(t0, 60'000'000);
            return Expr::timeWithin(t0, t1);
        }
        case 4:
            return Expr::minFlowPackets(static_cast<uint32_t>(
                rng.uniformInt(1, 100)));
        default: {
            uint16_t lo =
                static_cast<uint16_t>(rng.uniformInt(0, 1000));
            uint16_t hi = static_cast<uint16_t>(
                rng.uniformInt(lo, 1100));
            return Expr::portBetween(lo, hi);
        }
        }
    }
    switch (rng.uniformInt(0, 2)) {
    case 0:
        return Expr::andOf(randomExpr(rng, depth - 1),
                           randomExpr(rng, depth - 1));
    case 1:
        return Expr::orOf(randomExpr(rng, depth - 1),
                          randomExpr(rng, depth - 1));
    default:
        return Expr::notOf(randomExpr(rng, depth - 1));
    }
}

/**
 * Populate a summary's Bloom filter per the normative construction
 * of docs/FORMAT.md §5 (re-derived here on purpose: the planner's
 * soundness must hold against the on-wire filter, not against a
 * test double).
 */
void
bloomFill(codec::fcc::ChunkSummary &chunk,
          const std::vector<uint32_t> &servers)
{
    uint64_t want = std::max<uint64_t>(
        64, uint64_t{codec::fcc::bloomBitsPerServer} *
                servers.size());
    chunk.bloomBits = static_cast<uint32_t>(std::bit_ceil(want));
    chunk.bloom.assign(chunk.bloomBits / 8, 0);
    for (uint32_t ip : servers) {
        uint64_t h1 =
            util::mix64(0xA0761D6478BD642Full ^ ip);
        uint64_t h2 =
            util::mix64(0xE7037ED1A0B428DBull ^ ip) | 1;
        for (uint32_t i = 0; i < codec::fcc::bloomProbes; ++i) {
            uint64_t bit =
                (h1 + uint64_t{i} * h2) & (chunk.bloomBits - 1);
            chunk.bloom[bit >> 3] |=
                static_cast<uint8_t>(1u << (bit & 7));
        }
    }
}

/** A random chunk summary with a real Bloom filter over the flow
 *  server addresses it claims to hold. */
codec::fcc::ChunkSummary
randomChunk(util::Rng &rng,
            std::vector<std::pair<FlowView, uint64_t>> &flows)
{
    codec::fcc::ChunkSummary chunk;
    size_t n = static_cast<size_t>(rng.uniformInt(1, 24));
    chunk.minFirstUs = UINT64_MAX;
    chunk.maxEndUs = 0;
    chunk.maxFlowPackets = 0;
    chunk.records = n;
    for (size_t i = 0; i < n; ++i) {
        FlowView flow;
        // A small address pool makes Bloom hits (and misses) real.
        flow.serverIp = static_cast<uint32_t>(
            0x0a000000u + rng.uniformInt(0, 2000));
        flow.serverPort =
            static_cast<uint16_t>(rng.uniformInt(0, 1100));
        flow.packets = rng.uniformInt(1, 120);
        uint64_t startUs = rng.uniformInt(0, 55'000'000);
        chunk.minFirstUs = std::min(chunk.minFirstUs, startUs);
        // End time beyond the start; the packet we test is at the
        // flow start, inside [minFirstUs, maxEndUs] by design.
        chunk.maxEndUs = std::max(
            chunk.maxEndUs, startUs + rng.uniformInt(0, 4'000'000));
        chunk.maxFlowPackets =
            std::max(chunk.maxFlowPackets, flow.packets);
        flows.emplace_back(flow, startUs);
    }
    std::vector<uint32_t> servers;
    for (const auto &[flow, startUs] : flows)
        servers.push_back(flow.serverIp);
    bloomFill(chunk, servers);
    return chunk;
}

} // namespace

// ---- grammar --------------------------------------------------------

TEST(ExprGrammar, CanonicalForms)
{
    expectCanonical("all", "all");
    expectCanonical("server = 10.1.2.3", "server = 10.1.2.3");
    expectCanonical("server == 10.1.2.3", "server = 10.1.2.3");
    expectCanonical("server in 10.0.0.0/8", "server in 10.0.0.0/8");
    expectCanonical("port = 443", "port = 443");
    expectCanonical("port in [80, 443]", "port in [80, 443]");
    expectCanonical("time within [0, 60]", "time within [0, 60]");
    expectCanonical("time within [1.5, 2.25]",
                    "time within [1.5, 2.25]");
    expectCanonical("time within [0.000001, 0.000010]",
                    "time within [0.000001, 0.00001]");
    expectCanonical("flow.packets >= 50", "flow.packets >= 50");
    expectCanonical("not all", "not all");
    expectCanonical("( all )", "all");
    expectCanonical(
        "server = 1.2.3.4 and port = 80 and flow.packets >= 2",
        "server = 1.2.3.4 and port = 80 and flow.packets >= 2");
    expectCanonical("all or not (port = 1 and port = 2)",
                    "all or not (port = 1 and port = 2)");
    // Or binds looser than and; parens appear exactly where needed.
    expectCanonical("port = 1 and (port = 2 or port = 3)",
                    "port = 1 and (port = 2 or port = 3)");
    expectCanonical("port = 1 or port = 2 and port = 3",
                    "port = 1 or port = 2 and port = 3");
}

TEST(ExprGrammar, CidrHostAddressNormalizes)
{
    // The host bits of the CIDR base are masked away.
    Expr e = query::parseExpr("server in 10.1.2.3/8");
    EXPECT_EQ(e.str(), "server in 10.0.0.0/8");
}

TEST(ExprGrammar, RandomRoundTripFixedPoint)
{
    util::Rng rng(0xE1);
    for (int i = 0; i < 500; ++i) {
        Expr expr = randomExpr(rng, 4);
        std::string once = expr.str();
        Expr reparsed = query::parseExpr(once);
        EXPECT_EQ(reparsed.str(), once) << "expr: " << once;
    }
}

TEST(ExprGrammar, MalformedInputsThrow)
{
    const char *bad[] = {
        "",
        "   ",
        "serve = 1.2.3.4",
        "server = ",
        "server = 1.2.3",
        "server = 1.2.3.4.5",
        "server = 256.1.1.1",
        "server in 10.0.0.0",
        "server in 10.0.0.0/33",
        "server in 10.0.0.0/0",
        "port = ",
        "port = 65536",
        "port in [80 443]",
        "port in [80, 443",
        "time within 0, 60",
        "time within [0, 60",
        "time within [1.2345678, 2]",   // >6 fractional digits
        "time within [-1, 2]",
        "flow.packets > 3",
        "flow.packets >= 0",
        "flow.packets >=",
        "all and",
        "and all",
        "all or or all",
        "not",
        "(all",
        "all)",
        "all extra",
        "ALL",
    };
    for (const char *text : bad)
        EXPECT_THROW(query::parseExpr(text), util::Error)
            << "accepted: '" << text << "'";
}

TEST(ExprGrammar, InvertedRangesThrowAtConstruction)
{
    EXPECT_THROW(Expr::timeWithin(5'000'000, 4'999'999),
                 util::Error);
    EXPECT_THROW(Expr::portBetween(443, 80), util::Error);
    EXPECT_THROW(Expr::minFlowPackets(0), util::Error);
    EXPECT_THROW(Expr::serverIn(0x0a000000, 0), util::Error);
    EXPECT_THROW(Expr::serverIn(0x0a000000, 33), util::Error);
    EXPECT_THROW(query::parseExpr("time within [5, 4]"),
                 util::Error);
    EXPECT_THROW(query::parseExpr("port in [443, 80]"),
                 util::Error);

    // The deprecated Predicate adapter validates on lowering too.
    query::Predicate pred;
    pred.timeUs = {{5'000'000, 4'000'000}};
    EXPECT_THROW(pred.toExpr(), util::Error);
}

// ---- evaluation -----------------------------------------------------

TEST(ExprEval, LeavesAndCombinators)
{
    FlowView web{0x0a010203, 443, 60};  // 10.1.2.3:443, 60 packets
    FlowView other{0xc0a80001, 80, 2};  // 192.168.0.1:80, 2 packets

    EXPECT_TRUE(Expr::matchAll().matches(web, 0));
    EXPECT_TRUE(
        Expr::serverIs(0x0a010203).matches(web, 0));
    EXPECT_FALSE(
        Expr::serverIs(0x0a010203).matches(other, 0));
    EXPECT_TRUE(
        query::parseExpr("server in 10.0.0.0/8").matches(web, 0));
    EXPECT_FALSE(
        query::parseExpr("server in 10.0.0.0/8").matches(other, 0));
    EXPECT_TRUE(query::parseExpr("port = 443").matches(web, 0));
    EXPECT_TRUE(
        query::parseExpr("port in [80, 443]").matches(other, 0));
    EXPECT_FALSE(
        query::parseExpr("port in [81, 442]").matches(other, 0));
    EXPECT_TRUE(
        query::parseExpr("flow.packets >= 50").matches(web, 0));
    EXPECT_FALSE(
        query::parseExpr("flow.packets >= 50").matches(other, 0));

    Expr window = query::parseExpr("time within [1, 2]");
    EXPECT_TRUE(window.matches(web, 1'000'000));
    EXPECT_TRUE(window.matches(web, 2'000'000));  // inclusive
    EXPECT_FALSE(window.matches(web, 2'000'001));

    Expr combo = query::parseExpr(
        "server in 10.0.0.0/8 and not port = 80 or "
        "flow.packets >= 2");
    EXPECT_TRUE(combo.matches(web, 0));
    EXPECT_TRUE(combo.matches(other, 0));  // via the or-arm
}

TEST(ExprEval, FlowMatchShortcutAgreesWithFullEval)
{
    util::Rng rng(0xF00D);
    for (int i = 0; i < 300; ++i) {
        Expr expr = randomExpr(rng, 3);
        FlowView flow;
        flow.serverIp = static_cast<uint32_t>(
            rng.uniformInt(0, UINT32_MAX));
        flow.serverPort =
            static_cast<uint16_t>(rng.uniformInt(0, 1100));
        flow.packets = rng.uniformInt(1, 120);
        uint64_t us = rng.uniformInt(0, 60'000'000);
        query::Expr::FlowMatch verdict = expr.matchesFlow(flow);
        bool full = expr.matches(flow, us);
        if (verdict == query::Expr::FlowMatch::Always)
            EXPECT_TRUE(full) << expr.str();
        else if (verdict == query::Expr::FlowMatch::Never)
            EXPECT_FALSE(full) << expr.str();
        // PerPacket: either answer is consistent by definition.
    }
}

// ---- planning -------------------------------------------------------

TEST(ExprPlan, RandomExpressionsPlanSoundly)
{
    util::Rng rng(0xBEEF);
    size_t mayChecked = 0, mustChecked = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<std::pair<FlowView, uint64_t>> flows;
        codec::fcc::ChunkSummary chunk = randomChunk(rng, flows);
        Expr expr = randomExpr(rng, 3);
        query::Expr::ChunkMatch match = expr.planChunk(chunk);
        bool any = false, all = true;
        for (const auto &[flow, startUs] : flows) {
            bool m = expr.matches(flow, startUs);
            any = any || m;
            all = all && m;
        }
        // Soundness: a chunk holding a match may not be skipped.
        if (any) {
            EXPECT_TRUE(match.may)
                << "expr " << expr.str() << " skipped a matching "
                << "chunk (round " << round << ")";
            ++mayChecked;
        }
        // `must` promises every flow (at its in-bounds packet
        // times) matches.
        if (match.must) {
            EXPECT_TRUE(all)
                << "expr " << expr.str() << " claimed must on a "
                << "chunk with a non-match (round " << round << ")";
            ++mustChecked;
        }
    }
    EXPECT_GT(mayChecked, 50u);  // the test actually exercised both
    EXPECT_GT(mustChecked, 0u);
}

TEST(ExprPlan, DeMorganEquivalentsPlanConsistently)
{
    // ¬(a ∧ b) ≡ ¬a ∨ ¬b and ¬(a ∨ b) ≡ ¬a ∧ ¬b: the planner's
    // verdicts for both spellings must agree on every chunk.
    util::Rng rng(0xD0);
    for (int round = 0; round < 200; ++round) {
        std::vector<std::pair<FlowView, uint64_t>> flows;
        codec::fcc::ChunkSummary chunk = randomChunk(rng, flows);
        Expr a = randomExpr(rng, 2);
        Expr b = randomExpr(rng, 2);

        Expr notAnd = Expr::notOf(Expr::andOf(a, b));
        Expr orNots =
            Expr::orOf(Expr::notOf(a), Expr::notOf(b));
        query::Expr::ChunkMatch m1 = notAnd.planChunk(chunk);
        query::Expr::ChunkMatch m2 = orNots.planChunk(chunk);
        EXPECT_EQ(m1.may, m2.may) << notAnd.str();
        EXPECT_EQ(m1.must, m2.must) << notAnd.str();

        Expr notOr = Expr::notOf(Expr::orOf(a, b));
        Expr andNots =
            Expr::andOf(Expr::notOf(a), Expr::notOf(b));
        query::Expr::ChunkMatch m3 = notOr.planChunk(chunk);
        query::Expr::ChunkMatch m4 = andNots.planChunk(chunk);
        EXPECT_EQ(m3.may, m4.may) << notOr.str();
        EXPECT_EQ(m3.must, m4.must) << notOr.str();
    }
}

TEST(ExprPlan, PredicateAdapterLowersToSamePlanAndEval)
{
    util::Rng rng(0xAB);
    for (int round = 0; round < 100; ++round) {
        query::Predicate pred;
        if (rng.uniformInt(0, 1))
            pred.serverIp = static_cast<uint32_t>(
                0x0a000000u + rng.uniformInt(0, 2000));
        if (rng.uniformInt(0, 1)) {
            uint64_t t0 = rng.uniformInt(0, 50'000'000);
            pred.timeUs = {{t0, rng.uniformInt(t0, 60'000'000)}};
        }
        if (rng.uniformInt(0, 1))
            pred.minFlowPackets = static_cast<uint32_t>(
                rng.uniformInt(1, 100));
        Expr expr = pred.toExpr();

        std::vector<std::pair<FlowView, uint64_t>> flows;
        codec::fcc::ChunkSummary chunk = randomChunk(rng, flows);
        for (const auto &[flow, startUs] : flows) {
            bool viaExpr = expr.matches(flow, startUs);
            bool direct =
                (!pred.serverIp ||
                 *pred.serverIp == flow.serverIp) &&
                (!pred.timeUs ||
                 (startUs >= pred.timeUs->first &&
                  startUs <= pred.timeUs->second)) &&
                flow.packets >= pred.minFlowPackets;
            EXPECT_EQ(viaExpr, direct) << expr.str();
        }
    }
}
