/**
 * @file
 * Multi-archive catalog tests — the serving layer's data model.
 *
 * The load-bearing property (the PR's acceptance criterion): an
 * OR-of-conjunctions expression over a three-archive catalog must
 * return results bit-identical to concatenating each archive's
 * full-decode-then-filter output and time-ordering it — while
 * decoding strictly fewer chunks and bytes than the full scan, and
 * independently of the thread count. Aggregates must answer without
 * reconstructing packets (fewer bytes touched than the equivalent
 * reconstruction) and agree exactly between the indexed, the
 * unindexed, and the brute-forced-from-packets computation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "query/aggregate.hpp"
#include "query/catalog.hpp"
#include "query/query.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
using query::Expr;

namespace {

using fcc::test::tempPath;

trace::Trace
webTrace(uint64_t seed, double seconds, uint64_t shiftSec)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 60.0;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace tr = gen.generate();
    if (shiftSec > 0) {
        std::vector<trace::PacketRecord> packets = tr.packets();
        for (trace::PacketRecord &p : packets)
            p.timestampNs += shiftSec * 1'000'000'000ull;
        tr = trace::Trace(std::move(packets));
    }
    return tr;
}

/**
 * Three sealed archives partitioned in time — captures starting at
 * 0, 120 and 240 seconds — in one directory, plus an unindexed twin
 * of archive 0 for the index/no-index aggregate cross-check.
 *
 * The 120 s spacing is deliberate: a 6 s capture's longest flows
 * replay their modeled inter-arrival times on reconstruction and
 * extend ~70 s past the capture window, and time matching is
 * per-packet, so partitions narrower than the longest flow span
 * genuinely overlap.
 */
struct CatalogFixture
{
    std::string dir = tempPath("catalog_dir");
    std::vector<std::string> archivePaths;
    std::string plainPath = tempPath("catalog_plain.fcc");
    fccc::FccConfig cfg;

    CatalogFixture()
    {
        std::remove(plainPath.c_str());
        std::filesystem::create_directories(dir);
        cfg.container = fccc::ContainerFormat::Fcc3;
        cfg.chunkRecords = 64;
        cfg.threads = 1;
        fccc::FccConfig idxCfg = cfg;
        idxCfg.index = true;
        for (int i = 0; i < 3; ++i) {
            trace::Trace tr = webTrace(
                3000 + static_cast<uint64_t>(i), 6.0,
                static_cast<uint64_t>(i) * 120);
            std::string tsh =
                tempPath(("catalog_" + std::to_string(i) + ".tsh")
                             .c_str());
            trace::writeTshFile(tr, tsh);
            std::string fcc =
                dir + "/arch" + std::to_string(i) + ".fcc";
            fccc::compressTraceFile(tsh, fcc, idxCfg);
            archivePaths.push_back(fcc);
            if (i == 0)
                fccc::compressTraceFile(tsh, plainPath, cfg);
            std::remove(tsh.c_str());
        }
    }

    ~CatalogFixture()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        std::remove(plainPath.c_str());
    }
};

CatalogFixture &
fixture()
{
    static CatalogFixture f;
    return f;
}

std::vector<trace::PacketRecord>
collectCatalog(const query::ArchiveCatalog &catalog,
               const Expr &expr, query::CatalogQueryStats *stats,
               bool forceFullDecode = false)
{
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    query::CatalogQueryStats s =
        catalog.run(expr, sink, forceFullDecode);
    if (stats != nullptr)
        *stats = s;
    return out.packets();
}

/** The reference: per-archive full decode + filter, concatenated in
 *  catalog order, then stably time-ordered — exactly what the k-way
 *  merge (with its run-id tiebreak) promises to equal. */
std::vector<trace::PacketRecord>
referenceResults(const CatalogFixture &f, const Expr &expr)
{
    std::vector<trace::PacketRecord> all;
    for (const std::string &path : f.archivePaths) {
        query::FccArchive archive(path, f.cfg);
        trace::Trace out;
        trace::CollectTraceSink sink(out);
        archive.run(expr, sink, /*forceFullDecode=*/true);
        all.insert(all.end(), out.packets().begin(),
                   out.packets().end());
    }
    std::stable_sort(all.begin(), all.end(),
                     trace::packetCanonicalLess);
    return all;
}

std::vector<uint8_t>
tshBytes(const std::vector<trace::PacketRecord> &packets)
{
    std::vector<uint8_t> bytes;
    for (const trace::PacketRecord &p : packets)
        trace::encodeTshRecord(p, bytes);
    return bytes;
}

} // namespace

TEST(Catalog, OrOfConjunctionsBitIdenticalAndCheaperThanFullScan)
{
    CatalogFixture &f = fixture();
    query::ArchiveCatalog catalog(f.dir, f.cfg);
    ASSERT_EQ(catalog.size(), 3u);

    // OR of two conjunctions: a server subnet inside one time
    // partition, or the long flows of another.
    Expr expr = query::parseExpr(
        "(server in 128.0.0.0/8 and time within [0, 6]) or "
        "(flow.packets >= 40 and time within [120, 126])");

    query::CatalogQueryStats stats;
    std::vector<trace::PacketRecord> got =
        collectCatalog(catalog, expr, &stats);
    std::vector<trace::PacketRecord> want =
        referenceResults(f, expr);

    ASSERT_FALSE(want.empty());
    ASSERT_EQ(tshBytes(got), tshBytes(want));

    // Time-ordered output.
    for (size_t i = 1; i < got.size(); ++i)
        EXPECT_FALSE(
            trace::packetCanonicalLess(got[i], got[i - 1]));

    // Strictly cheaper than the full scan: the third archive's
    // partition matches neither disjunct, and within the others the
    // planner prunes chunks.
    EXPECT_GT(stats.archivesPruned, 0u);
    EXPECT_LT(stats.chunksDecoded, stats.chunksTotal);
    EXPECT_GT(stats.chunksDecoded, 0u);
    EXPECT_LT(stats.bytesRead, stats.fileBytes);
    EXPECT_EQ(stats.packetsMatched, got.size());
}

TEST(Catalog, ResultsInvariantUnderThreadCount)
{
    CatalogFixture &f = fixture();
    Expr expr = query::parseExpr(
        "server in 128.0.0.0/8 or flow.packets >= 30");

    fccc::FccConfig cfg1 = f.cfg, cfg4 = f.cfg;
    cfg1.threads = 1;
    cfg4.threads = 4;
    query::ArchiveCatalog cat1(f.dir, cfg1);
    query::ArchiveCatalog cat4(f.dir, cfg4);
    std::vector<trace::PacketRecord> r1 =
        collectCatalog(cat1, expr, nullptr);
    std::vector<trace::PacketRecord> r4 =
        collectCatalog(cat4, expr, nullptr);
    ASSERT_FALSE(r1.empty());
    EXPECT_EQ(tshBytes(r1), tshBytes(r4));
}

TEST(Catalog, TimePartitionPruningEqualsPerArchiveUnion)
{
    CatalogFixture &f = fixture();
    query::ArchiveCatalog catalog(f.dir, f.cfg);

    // A window entirely inside the middle archive's partition.
    Expr expr = query::parseExpr("time within [121, 124]");
    query::CatalogQueryStats stats;
    std::vector<trace::PacketRecord> got =
        collectCatalog(catalog, expr, &stats);
    EXPECT_EQ(stats.archivesPruned, 2u);

    // Union semantics: identical to querying the one live archive.
    query::FccArchive middle(f.archivePaths[1], f.cfg);
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    middle.run(expr, sink);
    ASSERT_FALSE(out.packets().empty());
    EXPECT_EQ(tshBytes(got), tshBytes(out.packets()));

    // And identical to the unpruned full-decode route.
    std::vector<trace::PacketRecord> full =
        collectCatalog(catalog, expr, nullptr,
                       /*forceFullDecode=*/true);
    EXPECT_EQ(tshBytes(got), tshBytes(full));
}

TEST(Catalog, FromPathsMatchesDirectoryScan)
{
    CatalogFixture &f = fixture();
    query::ArchiveCatalog byDir(f.dir, f.cfg);
    query::ArchiveCatalog byPaths =
        query::ArchiveCatalog::fromPaths(f.archivePaths, f.cfg);
    ASSERT_EQ(byDir.size(), byPaths.size());
    Expr expr = query::parseExpr("flow.packets >= 10");
    EXPECT_EQ(tshBytes(collectCatalog(byDir, expr, nullptr)),
              tshBytes(collectCatalog(byPaths, expr, nullptr)));
}

// ---- aggregates -----------------------------------------------------

TEST(Aggregate, TotalsMatchBruteForceFromReconstructedPackets)
{
    CatalogFixture &f = fixture();
    query::FccArchive archive(f.archivePaths[0], f.cfg);

    query::AggregateRequest req;
    req.kind = query::AggregateKind::FlowCounts;
    req.expr = Expr::matchAll();
    query::AggregateResult agg = archive.aggregate(req);

    // Brute force from the packets a full reconstruction emits.
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    query::QueryStats qs =
        archive.run(Expr::matchAll(), sink,
                    /*forceFullDecode=*/true);

    // With the default (direction-agnostic) addressing every
    // reconstructed packet carries the server as its destination,
    // so dstIp grouping recovers the per-server totals.
    uint64_t flows = 0, packets = 0, wireBytes = 0;
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> perServer;
    for (const trace::PacketRecord &p : out.packets()) {
        ++packets;
        wireBytes += 40 + p.payloadBytes;
        auto &[sp, sb] = perServer[p.dstIp];
        ++sp;
        sb += 40 + p.payloadBytes;
    }
    flows = qs.flowsMatched;

    uint64_t aggFlows = 0, aggPackets = 0, aggBytes = 0;
    for (const query::ServerAggregate &row : agg.servers) {
        aggFlows += row.flows;
        aggPackets += row.packets;
        aggBytes += row.wireBytes;
    }
    EXPECT_EQ(aggFlows, flows);
    EXPECT_EQ(aggPackets, packets);
    EXPECT_EQ(aggBytes, wireBytes);
    EXPECT_EQ(agg.stats.flowsAggregated, flows);

    // Per-server packet/byte totals agree with grouping the
    // reconstructed packets by destination (server) address.
    EXPECT_EQ(agg.servers.size(), perServer.size());
    for (const query::ServerAggregate &row : agg.servers) {
        auto it = perServer.find(row.serverIp);
        ASSERT_NE(it, perServer.end()) << row.serverIp;
        EXPECT_EQ(row.packets, it->second.first);
        EXPECT_EQ(row.wireBytes, it->second.second);
    }

    // Histogram mass equals the flow count.
    uint64_t histFlows = 0;
    for (uint64_t b : agg.histogram)
        histFlows += b;
    EXPECT_EQ(histFlows, flows);
}

TEST(Aggregate, IndexedAgreesWithUnindexedAndTouchesFewerBytes)
{
    CatalogFixture &f = fixture();
    query::FccArchive indexed(f.archivePaths[0], f.cfg);
    query::FccArchive plain(f.plainPath, f.cfg);
    ASSERT_TRUE(indexed.hasIndex());
    ASSERT_FALSE(plain.hasIndex());

    for (const char *text :
         {"all", "server in 128.0.0.0/8",
          "time within [1, 3] and flow.packets >= 2",
          "not server in 128.0.0.0/8 or port = 80"}) {
        query::AggregateRequest req;
        req.kind = query::AggregateKind::FlowCounts;
        req.expr = query::parseExpr(text);
        query::AggregateResult a = indexed.aggregate(req);
        query::AggregateResult b = plain.aggregate(req);
        ASSERT_EQ(a.servers.size(), b.servers.size()) << text;
        for (size_t i = 0; i < a.servers.size(); ++i) {
            EXPECT_EQ(a.servers[i].serverIp,
                      b.servers[i].serverIp) << text;
            EXPECT_EQ(a.servers[i].flows, b.servers[i].flows)
                << text;
            EXPECT_EQ(a.servers[i].packets,
                      b.servers[i].packets) << text;
            EXPECT_EQ(a.servers[i].wireBytes,
                      b.servers[i].wireBytes) << text;
        }
        EXPECT_EQ(a.histogram, b.histogram) << text;
        EXPECT_TRUE(a.stats.usedIndex) << text;
        EXPECT_FALSE(b.stats.usedIndex) << text;
    }

    // Aggregation answers from index blocks + selected columns:
    // strictly fewer bytes than the packet-reconstructing
    // equivalent, which reads every planned chunk's full frames.
    query::AggregateRequest req;
    req.kind = query::AggregateKind::FlowCounts;
    req.expr = query::parseExpr("server in 128.0.0.0/8");
    query::AggregateResult a = indexed.aggregate(req);
    EXPECT_LT(a.stats.bytesTouched, a.stats.reconstructBytes);
    EXPECT_LE(a.stats.reconstructBytes, a.stats.fileBytes);
}

TEST(Aggregate, CatalogMergeEqualsPerArchiveMerge)
{
    CatalogFixture &f = fixture();
    query::ArchiveCatalog catalog(f.dir, f.cfg);

    query::AggregateRequest req;
    req.kind = query::AggregateKind::TopTalkers;
    req.topK = 5;
    req.expr = query::parseExpr("flow.packets >= 2");

    query::AggregateResult whole = catalog.aggregate(req);

    query::AggregateResult manual;
    bool first = true;
    for (const std::string &path : f.archivePaths) {
        query::FccArchive archive(path, f.cfg);
        query::AggregateResult one = archive.aggregate(req);
        if (first) {
            manual = std::move(one);
            first = false;
        } else {
            query::mergeAggregateInto(manual, one);
        }
    }
    ASSERT_EQ(whole.servers.size(), manual.servers.size());
    for (size_t i = 0; i < whole.servers.size(); ++i) {
        EXPECT_EQ(whole.servers[i].serverIp,
                  manual.servers[i].serverIp);
        EXPECT_EQ(whole.servers[i].flows, manual.servers[i].flows);
        EXPECT_EQ(whole.servers[i].wireBytes,
                  manual.servers[i].wireBytes);
    }
    EXPECT_EQ(whole.histogram, manual.histogram);

    // Top-K is a render-time view over the merged table: rows are
    // sorted by bytes descending and bounded by K.
    std::vector<query::ServerAggregate> top =
        query::topTalkers(whole, req.topK);
    ASSERT_LE(top.size(), size_t{req.topK});
    for (size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].wireBytes, top[i].wireBytes);
}

TEST(Aggregate, TimePartitionedAggregatePrunesToOneArchive)
{
    CatalogFixture &f = fixture();
    query::ArchiveCatalog catalog(f.dir, f.cfg);

    query::AggregateRequest req;
    req.kind = query::AggregateKind::FlowCounts;
    req.expr = query::parseExpr("time within [241, 244]");

    query::AggregateResult whole = catalog.aggregate(req);
    query::FccArchive last(f.archivePaths[2], f.cfg);
    query::AggregateResult one = last.aggregate(req);

    ASSERT_EQ(whole.servers.size(), one.servers.size());
    for (size_t i = 0; i < whole.servers.size(); ++i) {
        EXPECT_EQ(whole.servers[i].serverIp,
                  one.servers[i].serverIp);
        EXPECT_EQ(whole.servers[i].flows, one.servers[i].flows);
        EXPECT_EQ(whole.servers[i].packets,
                  one.servers[i].packets);
    }
    // The other two archives were answered from their indexes
    // alone: chunks counted, none decoded beyond archive 2's.
    EXPECT_EQ(whole.stats.flowsAggregated,
              one.stats.flowsAggregated);
    EXPECT_GT(whole.stats.chunksTotal, one.stats.chunksTotal);
    EXPECT_EQ(whole.stats.chunksPlanned, one.stats.chunksPlanned);
}

TEST(Catalog, MissingDirectoryThrowsCleanError)
{
    EXPECT_THROW(
        query::ArchiveCatalog("/nonexistent/fcc/catalog", {}),
        util::Error);
}
