/**
 * @file
 * Tests of the flow layer: canonical keys, connection assembly, the
 * paper's S-value characterization (mixed-radix decodability, f1/f2/f3
 * semantics), the similarity rule (eq. 4), the template store and the
 * clustering study tools.
 */

#include <gtest/gtest.h>

#include "flow/characterize.hpp"
#include "flow/clustering.hpp"
#include "flow/flow_key.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "flow/template_store.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;
using namespace fcc::flow;
using fcc::trace::PacketRecord;
using fcc::trace::Trace;
namespace tf = fcc::trace::tcp_flags;

namespace {

PacketRecord
mkPacket(uint32_t srcIp, uint16_t srcPort, uint32_t dstIp,
         uint16_t dstPort, uint8_t flags, uint16_t payload,
         uint64_t tUs)
{
    PacketRecord pkt;
    pkt.timestampNs = tUs * 1000;
    pkt.srcIp = srcIp;
    pkt.dstIp = dstIp;
    pkt.srcPort = srcPort;
    pkt.dstPort = dstPort;
    pkt.tcpFlags = flags;
    pkt.payloadBytes = payload;
    return pkt;
}

/** A canonical 7-packet HTTP exchange between client C and server S. */
Trace
tinyConnection(uint32_t clientIp = 0x0a000001,
               uint16_t clientPort = 5000,
               uint32_t serverIp = 0xc0a80001, uint64_t baseUs = 0,
               uint64_t rttUs = 10000)
{
    Trace t;
    uint64_t ts = baseUs;
    t.add(mkPacket(clientIp, clientPort, serverIp, 80, tf::Syn, 0,
                   ts));
    ts += rttUs;
    t.add(mkPacket(serverIp, 80, clientIp, clientPort,
                   tf::Syn | tf::Ack, 0, ts));
    ts += rttUs;
    t.add(mkPacket(clientIp, clientPort, serverIp, 80, tf::Ack, 0,
                   ts));
    ts += 200;
    t.add(mkPacket(clientIp, clientPort, serverIp, 80,
                   tf::Ack | tf::Psh, 300, ts));
    ts += rttUs;
    t.add(mkPacket(serverIp, 80, clientIp, clientPort,
                   tf::Ack | tf::Psh, 1200, ts));
    ts += rttUs;
    t.add(mkPacket(clientIp, clientPort, serverIp, 80,
                   tf::Fin | tf::Ack, 0, ts));
    ts += rttUs;
    t.add(mkPacket(serverIp, 80, clientIp, clientPort,
                   tf::Fin | tf::Ack, 0, ts));
    return t;
}

} // namespace

// ---- FlowKey -------------------------------------------------------------

TEST(FlowKey, BothDirectionsShareOneKey)
{
    auto fwd = mkPacket(1, 100, 2, 200, tf::Ack, 0, 0);
    auto rev = mkPacket(2, 200, 1, 100, tf::Ack, 0, 0);
    EXPECT_EQ(FlowKey::fromPacket(fwd), FlowKey::fromPacket(rev));
    EXPECT_EQ(FlowKey::fromPacket(fwd).hash(),
              FlowKey::fromPacket(rev).hash());
}

TEST(FlowKey, DirectionIsRecoverable)
{
    auto fwd = mkPacket(1, 100, 2, 200, tf::Ack, 0, 0);
    auto rev = mkPacket(2, 200, 1, 100, tf::Ack, 0, 0);
    FlowKey key = FlowKey::fromPacket(fwd);
    EXPECT_NE(key.packetFromA(fwd), key.packetFromA(rev));
}

TEST(FlowKey, DistinctFlowsDiffer)
{
    auto a = mkPacket(1, 100, 2, 200, tf::Ack, 0, 0);
    auto b = mkPacket(1, 101, 2, 200, tf::Ack, 0, 0);
    EXPECT_NE(FlowKey::fromPacket(a), FlowKey::fromPacket(b));
}

TEST(FlowKey, SameIpDifferentPorts)
{
    // Packets between the same host pair on swapped ports must
    // canonicalize consistently.
    auto a = mkPacket(5, 80, 5, 443, tf::Ack, 0, 0);
    auto b = mkPacket(5, 443, 5, 80, tf::Ack, 0, 0);
    EXPECT_EQ(FlowKey::fromPacket(a), FlowKey::fromPacket(b));
}

// ---- FlowTable -------------------------------------------------------------

TEST(FlowTable, AssemblesOneConnection)
{
    Trace t = tinyConnection();
    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].size(), 7u);
    EXPECT_EQ(flows[0].clientIp, 0x0a000001u);
    EXPECT_EQ(flows[0].serverIp, 0xc0a80001u);
    EXPECT_EQ(flows[0].serverPort, 80);
}

TEST(FlowTable, DirectionBitsMatchInitiator)
{
    Trace t = tinyConnection();
    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 1u);
    std::vector<bool> expect = {true, false, true, true,
                                false, true, false};
    EXPECT_EQ(flows[0].fromClient, expect);
}

TEST(FlowTable, SeparatesInterleavedConnections)
{
    Trace a = tinyConnection(0x0a000001, 5000, 0xc0a80001, 0);
    Trace b = tinyConnection(0x0a000002, 6000, 0xc0a80002, 500);
    Trace merged;
    for (const auto &pkt : a)
        merged.add(pkt);
    for (const auto &pkt : b)
        merged.add(pkt);
    merged.sortByTime();

    FlowTable table;
    auto flows = table.assemble(merged);
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].size(), 7u);
    EXPECT_EQ(flows[1].size(), 7u);
    // Ordered by first timestamp.
    EXPECT_LE(flows[0].firstTimestampNs, flows[1].firstTimestampNs);
}

TEST(FlowTable, RstClosesFlowImmediately)
{
    Trace t;
    t.add(mkPacket(1, 100, 2, 80, tf::Syn, 0, 0));
    t.add(mkPacket(2, 80, 1, 100, tf::Syn | tf::Ack, 0, 100));
    t.add(mkPacket(1, 100, 2, 80, tf::Rst, 0, 200));
    // Same 5-tuple reused later: must become a second flow.
    t.add(mkPacket(1, 100, 2, 80, tf::Syn, 0, 5000));
    t.add(mkPacket(2, 80, 1, 100, tf::Syn | tf::Ack, 0, 5100));

    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].size(), 3u);
    EXPECT_EQ(flows[1].size(), 2u);
}

TEST(FlowTable, GracefulCloseEndsAfterFinalAck)
{
    Trace t;
    t.add(mkPacket(1, 100, 2, 80, tf::Syn, 0, 0));
    t.add(mkPacket(2, 80, 1, 100, tf::Syn | tf::Ack, 0, 100));
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 0, 200));
    t.add(mkPacket(2, 80, 1, 100, tf::Fin | tf::Ack, 0, 300));
    t.add(mkPacket(1, 100, 2, 80, tf::Fin | tf::Ack, 0, 400));
    t.add(mkPacket(2, 80, 1, 100, tf::Ack, 0, 500));
    // New connection on the same tuple.
    t.add(mkPacket(1, 100, 2, 80, tf::Syn, 0, 600));

    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].size(), 6u);
    EXPECT_EQ(flows[1].size(), 1u);
}

TEST(FlowTable, IdleTimeoutSplitsFlows)
{
    FlowTableConfig cfg;
    cfg.idleTimeoutNs = 1000000;  // 1 ms
    Trace t;
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 10, 0));
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 10, 100));
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 10, 5000));  // 4.9ms gap
    FlowTable table(cfg);
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].size(), 2u);
    EXPECT_EQ(flows[1].size(), 1u);
}

TEST(FlowTable, SynAckFirstIdentifiesReceiverAsClient)
{
    // Capture that starts mid-handshake.
    Trace t;
    t.add(mkPacket(2, 80, 1, 100, tf::Syn | tf::Ack, 0, 0));
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 0, 100));
    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].clientIp, 1u);
    EXPECT_EQ(flows[0].serverIp, 2u);
}

TEST(FlowTable, RequiresTimeOrderedInput)
{
    Trace t;
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 0, 1000));
    t.add(mkPacket(1, 100, 2, 80, tf::Ack, 0, 0));
    FlowTable table;
    EXPECT_THROW(table.assemble(t), util::Error);
}

TEST(FlowTable, EveryPacketAssignedExactlyOnce)
{
    trace::WebGenConfig cfg;
    cfg.seed = 77;
    cfg.durationSec = 5;
    cfg.flowsPerSec = 80;
    trace::WebTrafficGenerator gen(cfg);
    Trace t = gen.generate();
    FlowTable table;
    auto flows = table.assemble(t);
    std::vector<bool> seen(t.size(), false);
    for (const auto &f : flows) {
        for (uint32_t idx : f.packetIndex) {
            ASSERT_LT(idx, t.size());
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

// ---- characterization -------------------------------------------------

TEST(Characterize, FlagClasses)
{
    EXPECT_EQ(flagClass(tf::Syn), FlagClass::Syn);
    EXPECT_EQ(flagClass(tf::Syn | tf::Ack), FlagClass::SynAck);
    EXPECT_EQ(flagClass(tf::Ack), FlagClass::Ack);
    EXPECT_EQ(flagClass(tf::Ack | tf::Psh), FlagClass::Ack);
    EXPECT_EQ(flagClass(tf::Fin | tf::Ack), FlagClass::FinRst);
    EXPECT_EQ(flagClass(tf::Rst), FlagClass::FinRst);
    EXPECT_EQ(flagClass(0), FlagClass::Ack);
}

TEST(Characterize, SizeClasses)
{
    EXPECT_EQ(sizeClass(0), SizeClass::Empty);
    EXPECT_EQ(sizeClass(1), SizeClass::Small);
    EXPECT_EQ(sizeClass(500), SizeClass::Small);
    EXPECT_EQ(sizeClass(501), SizeClass::Large);
    EXPECT_EQ(sizeClass(1460), SizeClass::Large);
}

TEST(Characterize, DefaultWeightsAreThePapers)
{
    Weights w;
    EXPECT_EQ(w.w1, 16);
    EXPECT_EQ(w.w2, 4);
    EXPECT_EQ(w.w3, 1);
    EXPECT_TRUE(w.decodable());
}

TEST(Characterize, EncodeDecodeBijection)
{
    Characterizer chi;
    for (int f1 = 0; f1 <= 3; ++f1) {
        for (int dep = 0; dep <= 1; ++dep) {
            for (int f3 = 0; f3 <= 2; ++f3) {
                PacketClass cls;
                cls.flag = static_cast<FlagClass>(f1);
                cls.dependent = dep == 1;
                cls.size = static_cast<SizeClass>(f3);
                uint16_t s = chi.encode(cls);
                EXPECT_LE(s, chi.maxValue());
                EXPECT_EQ(chi.decode(s), cls);
            }
        }
    }
}

TEST(Characterize, PaperEncodingValues)
{
    // With weights {16,4,1}: a SYN (independent, empty) scores 4;
    // a dependent SYN+ACK scores 16; a dependent large data packet
    // scores 2*16 + 0 + 2 = 34.
    Characterizer chi;
    PacketClass syn{FlagClass::Syn, false, SizeClass::Empty};
    EXPECT_EQ(chi.encode(syn), 4);
    PacketClass synack{FlagClass::SynAck, true, SizeClass::Empty};
    EXPECT_EQ(chi.encode(synack), 16);
    PacketClass data{FlagClass::Ack, true, SizeClass::Large};
    EXPECT_EQ(chi.encode(data), 34);
    EXPECT_EQ(chi.maxValue(), 16 * 3 + 4 + 2);
}

TEST(Characterize, RejectsNonDecodableWeights)
{
    Weights w;
    w.w1 = 4;  // w1 must exceed w2 + 2*w3 = 6
    EXPECT_THROW(Characterizer{w}, util::Error);
    w = Weights{};
    w.w2 = 2;  // w2 must exceed 2*w3 = 2
    EXPECT_THROW(Characterizer{w}, util::Error);
    w = Weights{};
    w.w3 = 0;
    EXPECT_THROW(Characterizer{w}, util::Error);
}

TEST(Characterize, AlternativeWeightsWork)
{
    Weights w{32, 8, 2};
    Characterizer chi(w);
    PacketClass cls{FlagClass::FinRst, false, SizeClass::Large};
    EXPECT_EQ(chi.decode(chi.encode(cls)), cls);
}

TEST(Characterize, DecodeRejectsInvalidS)
{
    Characterizer chi;
    EXPECT_THROW(chi.decode(55), util::Error);   // beyond max
    EXPECT_THROW(chi.decode(15), util::Error);   // f2=3 impossible
}

TEST(Characterize, DependenceFollowsDirectionChanges)
{
    Trace t = tinyConnection();
    FlowTable table;
    auto flows = table.assemble(t);
    ASSERT_EQ(flows.size(), 1u);
    Characterizer chi;
    SfVector sf = chi.characterize(flows[0], t);
    ASSERT_EQ(sf.size(), 7u);

    // Packet 0 (SYN, independent): f1=0,f2=1,f3=0 -> 4.
    EXPECT_EQ(sf.values[0], 4);
    // Packet 1 (SYN+ACK, dependent): 16.
    EXPECT_EQ(sf.values[1], 16);
    // Packet 2 (handshake ACK, dependent): 2*16 + 0 = 32.
    EXPECT_EQ(sf.values[2], 32);
    // Packet 3 (request 300 B, same direction -> independent):
    // 2*16 + 4 + 1 = 37.
    EXPECT_EQ(sf.values[3], 37);
    // Packet 4 (response 1200 B, dependent): 2*16 + 2 = 34.
    EXPECT_EQ(sf.values[4], 34);
    // Packet 5 (client FIN, dependent): 3*16 = 48.
    EXPECT_EQ(sf.values[5], 48);
    // Packet 6 (server FIN, dependent): 48.
    EXPECT_EQ(sf.values[6], 48);
}

// ---- similarity / distance ----------------------------------------------

TEST(Similarity, DistanceIsL1)
{
    SfVector a{{4, 16, 32}};
    SfVector b{{4, 20, 30}};
    EXPECT_EQ(sfDistance(a, b), 6u);
    EXPECT_EQ(sfDistance(a, a), 0u);
}

TEST(Similarity, DistanceRequiresSameLength)
{
    SfVector a{{1, 2}};
    SfVector b{{1, 2, 3}};
    EXPECT_THROW(sfDistance(a, b), util::Error);
}

TEST(Similarity, EarlyExitAtLimit)
{
    SfVector a{{0, 0, 0}};
    SfVector b{{50, 50, 50}};
    EXPECT_GE(sfDistance(a, b, 10), 10u);
}

TEST(Similarity, PaperThresholdEquation)
{
    // eq. 4: d_sim = n * 50 * 2 / 100 = n.
    SimilarityRule rule;
    EXPECT_EQ(rule.threshold(1), 1u);
    EXPECT_EQ(rule.threshold(10), 10u);
    EXPECT_EQ(rule.threshold(50), 50u);
    SimilarityRule loose;
    loose.percent = 10.0;
    EXPECT_EQ(loose.threshold(10), 50u);
}

// ---- template store -----------------------------------------------------

TEST(TemplateStore, FirstFlowCreatesCluster)
{
    TemplateStore store;
    SfVector v{{4, 16, 32, 37}};
    auto m = store.findOrInsert(v);
    EXPECT_TRUE(m.isNew);
    EXPECT_EQ(m.index, 0u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(TemplateStore, IdenticalFlowMatches)
{
    TemplateStore store;
    SfVector v{{4, 16, 32, 37}};
    store.findOrInsert(v);
    auto m = store.findOrInsert(v);
    EXPECT_FALSE(m.isNew);
    EXPECT_EQ(m.index, 0u);
    EXPECT_EQ(m.distance, 0u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(TemplateStore, SimilarWithinThresholdMatches)
{
    TemplateStore store;
    SfVector centre{{4, 16, 32, 37, 34}};  // n=5 -> d_sim=5
    store.findOrInsert(centre);
    SfVector near{{4, 16, 32, 37, 38}};  // distance 4 < 5
    auto m = store.findOrInsert(near);
    EXPECT_FALSE(m.isNew);
    EXPECT_EQ(m.distance, 4u);
}

TEST(TemplateStore, DistanceAtThresholdIsNewCluster)
{
    TemplateStore store;
    SfVector centre{{4, 16, 32, 37, 34}};
    store.findOrInsert(centre);
    SfVector edge{{4, 16, 32, 37, 39}};  // distance 5 == d_sim
    auto m = store.findOrInsert(edge);
    EXPECT_TRUE(m.isNew);
    EXPECT_EQ(store.size(), 2u);
}

TEST(TemplateStore, DifferentLengthsNeverMatch)
{
    TemplateStore store;
    store.findOrInsert(SfVector{{4, 16}});
    auto m = store.findOrInsert(SfVector{{4, 16, 32}});
    EXPECT_TRUE(m.isNew);
}

TEST(TemplateStore, PicksClosestTemplate)
{
    SimilarityRule loose;
    loose.percent = 20.0;  // d_sim = 10n
    TemplateStore store(loose);
    store.insert(SfVector{{10, 10}});
    store.insert(SfVector{{14, 14}});
    auto m = store.find(SfVector{{13, 14}});
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->index, 1u);  // distance 1 beats distance 7
}

TEST(TemplateStore, PopulationsTracked)
{
    TemplateStore store;
    SfVector v{{4, 16, 32}};
    store.findOrInsert(v);
    store.findOrInsert(v);
    store.findOrInsert(v);
    EXPECT_EQ(store.populations()[0], 3u);
}

TEST(TemplateStore, AtValidatesIndex)
{
    TemplateStore store;
    EXPECT_THROW(store.at(0), util::Error);
}

// ---- clustering study ---------------------------------------------------

TEST(Clustering, FewClustersForSimilarWebFlows)
{
    // The §2.1 claim: many web flows, few clusters.
    trace::WebGenConfig cfg;
    cfg.seed = 100;
    cfg.durationSec = 20;
    cfg.flowsPerSec = 100;
    trace::WebTrafficGenerator gen(cfg);
    Trace t = gen.generate();
    FlowTable table;
    auto flows = table.assemble(t);
    Characterizer chi;
    std::vector<SfVector> vectors;
    for (const auto &f : flows)
        if (f.size() <= 50)
            vectors.push_back(chi.characterize(f, t));

    auto summary = summarizeDiversity(vectors);
    EXPECT_GT(summary.flows, 1500u);
    // Orders of magnitude fewer clusters than flows.
    EXPECT_LT(summary.clusters,
              summary.flows / 10);
    EXPECT_GT(summary.top10Share, 0.4);
}

TEST(Clustering, KMedoidsSeparatesObviousClusters)
{
    // Two tight groups of length-4 vectors.
    std::vector<SfVector> vectors;
    for (int i = 0; i < 20; ++i)
        vectors.push_back(SfVector{
            {static_cast<uint16_t>(4 + i % 2), 16, 32, 34}});
    for (int i = 0; i < 20; ++i)
        vectors.push_back(SfVector{
            {48, static_cast<uint16_t>(36 + i % 2), 6, 20}});

    util::Rng rng(5);
    auto result = kMedoids(vectors, 2, rng);
    EXPECT_EQ(result.medoids.size(), 2u);
    // All of group one together, all of group two together.
    for (int i = 1; i < 20; ++i)
        EXPECT_EQ(result.assignment[i], result.assignment[0]);
    for (int i = 21; i < 40; ++i)
        EXPECT_EQ(result.assignment[i], result.assignment[20]);
    EXPECT_NE(result.assignment[0], result.assignment[20]);

    double s = silhouette(vectors, result.assignment);
    EXPECT_GT(s, 0.8);
}

TEST(Clustering, KMedoidsValidatesArguments)
{
    util::Rng rng(1);
    std::vector<SfVector> empty;
    EXPECT_THROW(kMedoids(empty, 1, rng), util::Error);
    std::vector<SfVector> one = {SfVector{{1}}};
    EXPECT_THROW(kMedoids(one, 2, rng), util::Error);
    std::vector<SfVector> mixed = {SfVector{{1}}, SfVector{{1, 2}}};
    EXPECT_THROW(kMedoids(mixed, 1, rng), util::Error);
}

TEST(Clustering, KMedoidsCostDecreasesWithMoreClusters)
{
    util::Rng rng(7);
    std::vector<SfVector> vectors;
    for (int i = 0; i < 60; ++i)
        vectors.push_back(SfVector{
            {static_cast<uint16_t>(i % 5 * 10),
             static_cast<uint16_t>(i % 7 * 5), 20, 30}});
    auto r1 = kMedoids(vectors, 1, rng);
    auto r4 = kMedoids(vectors, 4, rng);
    EXPECT_LE(r4.totalCost, r1.totalCost);
}

// ---- flow stats -----------------------------------------------------------

TEST(FlowStats, SharesAndDistribution)
{
    Trace t = tinyConnection();
    FlowTable table;
    auto flows = table.assemble(t);
    auto stats = computeFlowStats(flows, t);
    EXPECT_EQ(stats.flows, 1u);
    EXPECT_EQ(stats.packets, 7u);
    EXPECT_EQ(stats.shortFlows, 1u);
    EXPECT_DOUBLE_EQ(stats.shortFlowShare(), 1.0);
    EXPECT_DOUBLE_EQ(stats.meanFlowLength(), 7.0);

    auto dist = stats.lengthDistribution();
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist[0].first, 7u);
    EXPECT_DOUBLE_EQ(dist[0].second, 1.0);
}

TEST(FlowStats, ShortLimitBoundary)
{
    // Build one 50-packet and one 51-packet flow.
    Trace t;
    for (int i = 0; i < 50; ++i)
        t.add(mkPacket(1, 100, 2, 80, tf::Ack, 10,
                       static_cast<uint64_t>(i) * 100));
    for (int i = 0; i < 51; ++i)
        t.add(mkPacket(1, 101, 2, 80, tf::Ack, 10,
                       static_cast<uint64_t>(i) * 100 + 10));
    t.sortByTime();
    FlowTable table;
    auto flows = table.assemble(t);
    auto stats = computeFlowStats(flows, t);
    EXPECT_EQ(stats.flows, 2u);
    EXPECT_EQ(stats.shortFlows, 1u);
    EXPECT_EQ(stats.shortPackets, 50u);
}
