/**
 * @file
 * Differential fuzz across the fidelity tiers (docs/FIDELITY.md):
 * randomized traces go through the exact pipeline and each lossy
 * tier, and the suite asserts the tiers' *documented* invariants
 * against each other —
 *  - quantized: timestamps land on the declared grid and nothing
 *    else changes (templates, addresses, every other time-seq
 *    field are bit-identical to the exact tier's),
 *  - header: the decoded trace is per-packet identical to the
 *    exact decode except the TCP flag byte (and the seq/ack
 *    counters reconstruction derives from it),
 *  - flow: aggregate queries answer exactly as the exact archive
 *    of the same trace does,
 * plus thread-count determinism for every lossy tier and clean
 * util::Error failures on corrupt or truncated lossy containers.
 *
 * Set FCC_TEST_SMOKE=1 to shrink traces and seed counts (used by
 * the sanitizer CI jobs).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/field/field_codec.hpp"
#include "query/aggregate.hpp"
#include "query/query.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

bool
smokeTests()
{
    const char *env = std::getenv("FCC_TEST_SMOKE");
    return env != nullptr && env[0] == '1';
}

std::vector<uint64_t>
fuzzSeeds()
{
    if (smokeTests())
        return {3};
    return {3, 17, 92};
}

trace::Trace
randomTrace(uint64_t seed)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = smokeTests() ? 1.5 : 3.0;
    cfg.flowsPerSec = 40.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

fccc::FccConfig
tierConfig(fccc::Fidelity tier, uint32_t threads = 1,
           bool index = false)
{
    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.chunkRecords = 64;
    cfg.fidelity = tier;
    cfg.threads = threads;
    cfg.index = index;
    return cfg;
}

std::vector<uint8_t>
compressAs(const trace::Trace &tr, fccc::Fidelity tier,
           uint32_t threads = 1, bool index = false)
{
    fccc::FccTraceCompressor codec(
        tierConfig(tier, threads, index));
    return codec.compress(tr);
}

void
writeBytes(const std::string &path,
           const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Run @p fn expecting a util::Error whose message contains
 *  @p needle. */
template <typename Fn>
void
expectError(Fn &&fn, const char *needle)
{
    try {
        fn();
        ADD_FAILURE() << "expected util::Error (" << needle << ")";
    } catch (const util::Error &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << error.what();
    }
}

// FCC3 header layout (docs/FORMAT.md): u32 magic, 3 x u16 weights,
// then the column-count byte at offset 10; a lossy archive follows
// it with the tier tag at 11 and the varint parameter from 12.
constexpr size_t kColByteOff = 10;
constexpr size_t kTagOff = 11;
constexpr size_t kParamOff = 12;

} // namespace

TEST(Fidelity, QuantizedKeepsEverythingButTheGrid)
{
    constexpr uint64_t grid = 1000;
    for (uint64_t seed : fuzzSeeds()) {
        SCOPED_TRACE(seed);
        trace::Trace tr = randomTrace(seed);
        fccc::Datasets exact = fccc::deserializeAuto(
            compressAs(tr, fccc::Fidelity::Exact), 1);
        fccc::Datasets quant = fccc::deserializeAuto(
            compressAs(tr, fccc::Fidelity::Quantized), 1);

        EXPECT_EQ(quant.fidelity, fccc::Fidelity::Quantized);
        EXPECT_EQ(quant.quantumUs, grid);
        EXPECT_EQ(quant.shortTemplates, exact.shortTemplates);
        EXPECT_EQ(quant.longTemplates, exact.longTemplates);
        EXPECT_EQ(quant.addresses, exact.addresses);
        EXPECT_EQ(quant.chunkSizes, exact.chunkSizes);

        ASSERT_EQ(quant.timeSeq.size(), exact.timeSeq.size());
        for (size_t i = 0; i < quant.timeSeq.size(); ++i) {
            const fccc::TimeSeqRecord &q = quant.timeSeq[i];
            const fccc::TimeSeqRecord &e = exact.timeSeq[i];
            uint64_t floored = e.firstTimestampUs;
            codec::field::floorToGrid({&floored, 1}, grid);
            EXPECT_TRUE(codec::field::isOnGrid(
                {&q.firstTimestampUs, 1}, grid));
            EXPECT_EQ(q.firstTimestampUs, floored);
            EXPECT_EQ(q.isLong, e.isLong);
            EXPECT_EQ(q.templateIndex, e.templateIndex);
            EXPECT_EQ(q.rttUs, e.rttUs);
            EXPECT_EQ(q.addressIndex, e.addressIndex);
        }
    }
}

TEST(Fidelity, HeaderKeepsEverythingButTheFlags)
{
    for (uint64_t seed : fuzzSeeds()) {
        SCOPED_TRACE(seed);
        trace::Trace tr = randomTrace(seed);
        fccc::FccTraceCompressor codec(
            tierConfig(fccc::Fidelity::Exact));
        trace::Trace exact = codec.decompress(
            compressAs(tr, fccc::Fidelity::Exact));
        trace::Trace header = codec.decompress(
            compressAs(tr, fccc::Fidelity::Header));

        ASSERT_EQ(header.size(), exact.size());
        // seq/ack are *derived* from the flag classes on
        // reconstruction: each SYN/FIN consumes one phantom
        // sequence number, so where the tier rewrote a flag the
        // counters shift by exactly the phantom bytes dropped so
        // far on that flow direction — nothing more. Both decodes
        // draw identical per-flow RNG bases (the tier never
        // changes record counts), so the shift is checkable
        // exactly.
        using Dir = std::tuple<uint32_t, uint32_t, uint16_t,
                               uint16_t>;
        std::map<Dir, int64_t> phantomShift;
        size_t flagDiffs = 0;
        for (size_t i = 0; i < header.size(); ++i) {
            const trace::PacketRecord &h = header[i];
            const trace::PacketRecord &e = exact[i];
            EXPECT_EQ(h.timestampNs, e.timestampNs);
            EXPECT_EQ(h.srcIp, e.srcIp);
            EXPECT_EQ(h.dstIp, e.dstIp);
            EXPECT_EQ(h.srcPort, e.srcPort);
            EXPECT_EQ(h.dstPort, e.dstPort);
            EXPECT_EQ(h.protocol, e.protocol);
            EXPECT_EQ(h.payloadBytes, e.payloadBytes);
            EXPECT_EQ(h.window, e.window);
            EXPECT_EQ(h.ipId, e.ipId);

            using namespace trace::tcp_flags;
            Dir dir{e.srcIp, e.dstIp, e.srcPort, e.dstPort};
            Dir rev{e.dstIp, e.srcIp, e.dstPort, e.srcPort};
            int64_t shift = phantomShift[dir];
            EXPECT_EQ(h.seq,
                      static_cast<uint32_t>(
                          e.seq - static_cast<uint64_t>(shift)));
            // The ack mirrors the opposite direction's counter;
            // comparable only when both decodes set the Ack bit.
            if ((e.tcpFlags & Ack) && (h.tcpFlags & Ack)) {
                int64_t rshift = phantomShift[rev];
                EXPECT_EQ(h.ack,
                          static_cast<uint32_t>(
                              e.ack -
                              static_cast<uint64_t>(rshift)));
            }
            phantomShift[dir] +=
                ((e.tcpFlags & (Syn | Fin)) ? 1 : 0) -
                ((h.tcpFlags & (Syn | Fin)) ? 1 : 0);
            flagDiffs += h.tcpFlags != e.tcpFlags;
        }
        // The tier must actually drop detail: a web trace carries
        // SYN/FIN shapes no plain-Ack rewrite preserves.
        EXPECT_GT(flagDiffs, 0u);
    }
}

TEST(Fidelity, FlowAggregatesMatchExactGroundTruth)
{
    for (uint64_t seed : fuzzSeeds()) {
        SCOPED_TRACE(seed);
        trace::Trace tr = randomTrace(seed);
        std::string exactPath = fcc::test::tempPath(
            "agg-exact-" + std::to_string(seed) + ".fcc");
        std::string flowPath = fcc::test::tempPath(
            "agg-flow-" + std::to_string(seed) + ".fcc");
        writeBytes(exactPath,
                   compressAs(tr, fccc::Fidelity::Exact, 1, true));
        writeBytes(flowPath,
                   compressAs(tr, fccc::Fidelity::Flow, 1, true));

        query::FccArchive exact(exactPath);
        query::FccArchive flow(flowPath);
        query::AggregateRequest req;
        req.kind = query::AggregateKind::FlowCounts;
        query::AggregateResult a = exact.aggregate(req);
        query::AggregateResult b = flow.aggregate(req);

        ASSERT_EQ(a.servers.size(), b.servers.size());
        for (size_t i = 0; i < a.servers.size(); ++i) {
            SCOPED_TRACE(i);
            EXPECT_EQ(a.servers[i].serverIp, b.servers[i].serverIp);
            EXPECT_EQ(a.servers[i].flows, b.servers[i].flows);
            EXPECT_EQ(a.servers[i].packets, b.servers[i].packets);
            EXPECT_EQ(a.servers[i].wireBytes,
                      b.servers[i].wireBytes);
        }
        EXPECT_EQ(a.histogram, b.histogram);

        // The stored per-flow records carry the exact tier's
        // ground truth: one record per flow, packets summing to
        // the original trace.
        fccc::Datasets d = fccc::deserializeAuto(
            compressAs(tr, fccc::Fidelity::Flow), 1);
        fccc::Datasets e = fccc::deserializeAuto(
            compressAs(tr, fccc::Fidelity::Exact), 1);
        EXPECT_EQ(d.flowRecords.size(), e.timeSeq.size());
        uint64_t packets = 0;
        for (const fccc::FlowRecord &fl : d.flowRecords)
            packets += fl.packets;
        EXPECT_EQ(packets, tr.size());
    }
}

TEST(Fidelity, LossyTiersAreThreadDeterministic)
{
    trace::Trace tr = randomTrace(5);
    const fccc::Fidelity tiers[] = {fccc::Fidelity::Quantized,
                                    fccc::Fidelity::Header,
                                    fccc::Fidelity::Flow};
    for (fccc::Fidelity tier : tiers) {
        SCOPED_TRACE(fccc::fidelityName(tier));
        std::vector<uint8_t> reference =
            compressAs(tr, tier, 1, true);
        for (uint32_t threads : {2u, 4u, 8u})
            EXPECT_EQ(compressAs(tr, tier, threads, true),
                      reference)
                << "threads=" << threads;
    }
}

TEST(Fidelity, CorruptContainersFailCleanly)
{
    trace::Trace tr = randomTrace(9);
    std::vector<uint8_t> quantized =
        compressAs(tr, fccc::Fidelity::Quantized);
    std::vector<uint8_t> header =
        compressAs(tr, fccc::Fidelity::Header);
    ASSERT_GT(quantized.size(), kParamOff + 2);
    ASSERT_NE(quantized[kColByteOff] & 0x40, 0);

    {
        std::vector<uint8_t> bad = quantized;
        bad[kTagOff] = 9;
        expectError([&] { fccc::deserializeAuto(bad, 1); },
                    "unknown fidelity tag");
    }
    {
        std::vector<uint8_t> bad = quantized;
        bad[kParamOff] = 0;  // varint 0: a zero-width grid
        expectError([&] { fccc::deserializeAuto(bad, 1); },
                    "grid must be >= 1");
    }
    {
        std::vector<uint8_t> bad = header;
        bad[kParamOff] = 5;  // header tier carries no parameter
        expectError([&] { fccc::deserializeAuto(bad, 1); },
                    "unexpected fidelity parameter");
    }

    // Truncations anywhere — mid-header, mid-tag, mid-columns —
    // must surface as util::Error, never a crash or silent result.
    for (size_t keep :
         {size_t{kTagOff}, size_t{kParamOff}, quantized.size() / 2,
          quantized.size() - 7}) {
        SCOPED_TRACE(keep);
        std::vector<uint8_t> cut(quantized.begin(),
                                 quantized.begin() +
                                     static_cast<long>(keep));
        EXPECT_THROW(fccc::deserializeAuto(cut, 1), util::Error);
    }
}

TEST(Fidelity, OffGridArchiveIsRejected)
{
    // A container may *claim* the quantized tier while carrying
    // off-grid timestamps (bit flip, buggy writer); the reader must
    // reject it rather than hand out data violating the tier's
    // contract.
    trace::Trace tr = randomTrace(13);
    fccc::Datasets d = fccc::deserializeAuto(
        compressAs(tr, fccc::Fidelity::Exact), 1);
    bool anyOffGrid = false;
    for (const fccc::TimeSeqRecord &r : d.timeSeq)
        anyOffGrid |= r.firstTimestampUs % 1'000'000 != 0;
    ASSERT_TRUE(anyOffGrid);

    d.fidelity = fccc::Fidelity::Quantized;
    d.quantumUs = 1'000'000;
    fccc::SizeBreakdown breakdown;
    std::vector<uint8_t> forged = fccc::serializeColumnar(
        d, 64, codec::backend::EntropyBackend::Store, breakdown);
    expectError([&] { fccc::deserializeAuto(forged, 1); },
                "off the quantized grid");
}
