/**
 * @file
 * Adversarial-input robustness: every codec must survive systematic
 * corruption of its own output — single-byte flips at every offset
 * (stride-sampled) and truncation at every length — by either
 * throwing fcc::util::Error or returning a well-formed trace. No
 * crashes, no unbounded allocation, no silent UB.
 */

#include <gtest/gtest.h>

#include <memory>

#include "codec/compressor.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;

namespace {

trace::Trace
webTrace()
{
    trace::WebGenConfig cfg;
    cfg.seed = 101;
    cfg.durationSec = 2.0;
    cfg.flowsPerSec = 50.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

/** Decompress must either throw util::Error or return a trace. */
void
mustNotCrash(const codec::TraceCompressor &codec,
             const std::vector<uint8_t> &bytes, const char *what)
{
    try {
        trace::Trace out = codec.decompress(bytes);
        // A successfully decoded trace must at least be sane.
        EXPECT_LE(out.size(), 10u * 1000 * 1000) << what;
    } catch (const util::Error &) {
        // expected for most corruptions
    }
}

class CodecRobustness
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<codec::TraceCompressor>
    makeCodec() const
    {
        for (auto &codec : codec::makeAllCodecs())
            if (codec->name() == GetParam())
                return std::move(codec);
        ADD_FAILURE() << "unknown codec " << GetParam();
        return nullptr;
    }
};

} // namespace

TEST_P(CodecRobustness, SingleByteFlips)
{
    auto codec = makeCodec();
    auto bytes = codec->compress(webTrace());
    ASSERT_GT(bytes.size(), 64u);

    // Flip every byte in the header region and a stride sample of
    // the body; three different flip patterns.
    for (uint8_t pattern : {0xffu, 0x01u, 0x80u}) {
        for (size_t pos = 0; pos < bytes.size();
             pos += pos < 64 ? 1 : 31) {
            auto bad = bytes;
            bad[pos] ^= pattern;
            mustNotCrash(*codec, bad, codec->name().c_str());
        }
    }
}

TEST_P(CodecRobustness, TruncationSweep)
{
    auto codec = makeCodec();
    auto bytes = codec->compress(webTrace());
    for (size_t len = 0; len < bytes.size();
         len += len < 64 ? 1 : 97) {
        auto bad = bytes;
        bad.resize(len);
        mustNotCrash(*codec, bad, codec->name().c_str());
    }
}

TEST_P(CodecRobustness, RandomGarbage)
{
    auto codec = makeCodec();
    util::Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> garbage(
            rng.uniformInt(0, 4096));
        for (auto &byte : garbage)
            byte = static_cast<uint8_t>(rng.next());
        mustNotCrash(*codec, garbage, codec->name().c_str());
    }
}

TEST_P(CodecRobustness, ValidHeaderGarbageBody)
{
    auto codec = makeCodec();
    auto bytes = codec->compress(webTrace());
    util::Rng rng(8);
    for (int trial = 0; trial < 20; ++trial) {
        auto bad = bytes;
        // Keep the first 16 bytes (magic etc.), randomize the rest.
        for (size_t i = 16; i < bad.size(); ++i)
            bad[i] = static_cast<uint8_t>(rng.next());
        mustNotCrash(*codec, bad, codec->name().c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRobustness,
                         ::testing::Values("gzip", "vj", "peuhkuri",
                                           "fcc"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

// ---- cross-seed round-trip properties --------------------------------------

struct RoundTripParam
{
    uint64_t seed;
    double seconds;
    double rate;
};

class FccRoundTripSweep
    : public ::testing::TestWithParam<RoundTripParam>
{};

TEST_P(FccRoundTripSweep, StructurePreserved)
{
    auto [seed, seconds, rate] = GetParam();
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = rate;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace original = gen.generate();

    codec::fcc::FccTraceCompressor codec;
    auto bytes = codec.compress(original);
    trace::Trace restored = codec.decompress(bytes);

    // Invariants that must hold for every workload:
    EXPECT_EQ(restored.size(), original.size());
    EXPECT_TRUE(restored.isTimeOrdered());
    EXPECT_LT(bytes.size(),
              original.size() * trace::tshRecordBytes / 8)
        << "ratio above 12.5%";
    // Double round trip is stable in size.
    auto bytes2 = codec.compress(restored);
    trace::Trace restored2 = codec.decompress(bytes2);
    EXPECT_EQ(restored2.size(), restored.size());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FccRoundTripSweep,
    ::testing::Values(RoundTripParam{1, 2.0, 30.0},
                      RoundTripParam{2, 2.0, 150.0},
                      RoundTripParam{3, 8.0, 40.0},
                      RoundTripParam{4, 4.0, 80.0},
                      RoundTripParam{5, 1.0, 400.0},
                      RoundTripParam{6, 16.0, 20.0},
                      RoundTripParam{7, 3.0, 60.0},
                      RoundTripParam{8, 5.0, 100.0}));
