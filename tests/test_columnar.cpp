/**
 * @file
 * Columnar codec-layer tests: field codecs (plain, zigzag-delta,
 * dictionary, run-length), entropy backends (store, deflate, range
 * coder), and a property/fuzz-style generator of random valid
 * Datasets asserting encode→decode identity across all three
 * containers and all backends — including empty columns, single-flow
 * datasets, u32/u64 boundary values and maximum-length varints.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codec/backend/backend.hpp"
#include "codec/backend/range_coder.hpp"
#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/field/field_codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
namespace field = fcc::codec::field;
namespace backend = fcc::codec::backend;

namespace {

const field::FieldCodec allCodecs[] = {
    field::FieldCodec::Plain,
    field::FieldCodec::ZigzagDelta,
    field::FieldCodec::Dict,
    field::FieldCodec::Rle,
};

const backend::EntropyBackend allBackends[] = {
    backend::EntropyBackend::Store,
    backend::EntropyBackend::Deflate,
    backend::EntropyBackend::Range,
    backend::EntropyBackend::RangeLanes,
};

/** Round-trip @p values through every codec and check the chooser. */
void
roundTripAllCodecs(const std::vector<uint64_t> &values)
{
    for (field::FieldCodec codec : allCodecs) {
        auto encoded = field::encodeColumn(values, codec);
        EXPECT_EQ(encoded.size(),
                  field::encodedSize(values, codec))
            << fieldCodecName(codec);
        auto decoded =
            field::decodeColumn(encoded, codec, values.size());
        EXPECT_EQ(decoded, values) << fieldCodecName(codec);
    }
    // The chooser must pick a codec no worse than any other.
    field::FieldCodec best = field::chooseCodec(values);
    uint64_t bestSize = field::encodedSize(values, best);
    for (field::FieldCodec codec : allCodecs)
        EXPECT_LE(bestSize, field::encodedSize(values, codec));
}

std::vector<uint64_t>
randomColumn(util::Rng &rng, size_t n)
{
    std::vector<uint64_t> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        switch (rng.uniformInt(0, 4)) {
          case 0:
            values.push_back(rng.uniformInt(0, 3));
            break;
          case 1:
            values.push_back(rng.uniformInt(0, 0xffff));
            break;
          case 2:
            values.push_back(rng.next());  // full u64 range
            break;
          case 3:
            values.push_back(~0ull);  // max varint (10 bytes)
            break;
          default:
            values.push_back(0);
            break;
        }
    }
    return values;
}

} // namespace

TEST(FieldCodec, RoundTripsShapedColumns)
{
    roundTripAllCodecs({});
    roundTripAllCodecs({0});
    roundTripAllCodecs({~0ull});
    roundTripAllCodecs({5, 5, 5, 5, 5, 5, 5, 5});
    roundTripAllCodecs({1, 2, 3, 4, 5, 6, 7, 8, 9});
    // Deltas that wrap the u64 range both ways.
    roundTripAllCodecs({~0ull, 0, ~0ull, 1, ~0ull});
    // Low cardinality, high repetition.
    roundTripAllCodecs({80, 443, 80, 80, 443, 8080, 80, 443});
}

TEST(FieldCodec, RoundTripsRandomColumns)
{
    util::Rng rng(0xc01d);
    for (int iter = 0; iter < 24; ++iter)
        roundTripAllCodecs(
            randomColumn(rng, rng.uniformInt(0, 600)));
}

TEST(FieldCodec, ChooserMatchesColumnShape)
{
    // Sorted near-linear values: zigzag deltas win.
    std::vector<uint64_t> timestamps;
    for (uint64_t i = 0; i < 500; ++i)
        timestamps.push_back(1700000000000000ull + i * 1300);
    EXPECT_EQ(field::chooseCodec(timestamps),
              field::FieldCodec::ZigzagDelta);

    // A constant run: RLE wins.
    std::vector<uint64_t> flags(500, 1);
    EXPECT_EQ(field::chooseCodec(flags), field::FieldCodec::Rle);

    // Few distinct large values, no runs, no order: dict wins.
    std::vector<uint64_t> rtts;
    const uint64_t pool[] = {0x123456789abull, 0xfedcba98765ull,
                             0xa5a5a5a5a5a5ull};
    for (size_t i = 0; i < 600; ++i)
        rtts.push_back(pool[i % 3]);
    EXPECT_EQ(field::chooseCodec(rtts), field::FieldCodec::Dict);
}

TEST(FieldCodec, RejectsMalformedColumns)
{
    std::vector<uint64_t> values = {1, 2, 3};
    auto encoded =
        field::encodeColumn(values, field::FieldCodec::Plain);
    // Trailing bytes must be flagged.
    auto padded = encoded;
    padded.push_back(0);
    EXPECT_THROW(field::decodeColumn(padded,
                                     field::FieldCodec::Plain, 3),
                 util::Error);
    // Truncation must be flagged.
    auto cut = encoded;
    cut.pop_back();
    EXPECT_THROW(
        field::decodeColumn(cut, field::FieldCodec::Plain, 3),
        util::Error);
    // A dictionary index past the dictionary must be flagged.
    std::vector<uint8_t> badDict = {1, 7, 1};  // dict {7}, ref 1
    EXPECT_THROW(field::decodeColumn(badDict,
                                     field::FieldCodec::Dict, 1),
                 util::Error);
    // A run longer than the column must be flagged.
    std::vector<uint8_t> badRun = {9, 5};  // value 9, run 5
    EXPECT_THROW(
        field::decodeColumn(badRun, field::FieldCodec::Rle, 3),
        util::Error);
}

TEST(RangeCoder, RoundTripsByteStreams)
{
    util::Rng rng(0xace);
    std::vector<std::vector<uint8_t>> cases = {
        {},
        {0},
        {0xff},
        std::vector<uint8_t>(1000, 0),
        std::vector<uint8_t>(1000, 0xa5),
    };
    // Random and skewed streams.
    std::vector<uint8_t> random(8192);
    for (auto &b : random)
        b = static_cast<uint8_t>(rng.next());
    cases.push_back(random);
    std::vector<uint8_t> skewed(8192);
    for (auto &b : skewed)
        b = rng.chance(0.9) ? 0 : static_cast<uint8_t>(rng.next());
    cases.push_back(skewed);

    for (const auto &data : cases) {
        auto packed = backend::rangeCompress(data);
        auto unpacked =
            backend::rangeDecompress(packed, data.size());
        EXPECT_EQ(unpacked, data);
        // Deterministic: same input, same bits.
        EXPECT_EQ(packed, backend::rangeCompress(data));
    }

    // The adaptive model must actually compress a skewed stream.
    auto packed = backend::rangeCompress(skewed);
    EXPECT_LT(packed.size(), skewed.size() / 2);
}

TEST(Backend, DispatchRoundTripsAndValidates)
{
    util::Rng rng(0xbac);
    std::vector<uint8_t> data(4096);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.uniformInt(0, 15));
    for (backend::EntropyBackend b : allBackends) {
        auto packed = backend::entropyCompress(data, b);
        auto unpacked =
            backend::entropyDecompress(packed, b, data.size());
        EXPECT_EQ(unpacked, data) << backendName(b);
        // Store and deflate know their own output size, so a wrong
        // raw size must be flagged. The range coders produce
        // exactly as many bytes as asked by construction (the
        // container's encodedBytes is its only length source).
        if (b != backend::EntropyBackend::Range &&
            b != backend::EntropyBackend::RangeLanes) {
            EXPECT_THROW(backend::entropyDecompress(
                             packed, b, data.size() + 1),
                         util::Error)
                << backendName(b);
        }
    }
}

namespace {

/**
 * Random valid Datasets: empty datasets, single-flow datasets,
 * u32/u64 boundary values and max-length varints all appear with
 * fair probability.
 */
fccc::Datasets
randomDatasets(util::Rng &rng)
{
    fccc::Datasets d;

    auto boundaryU64 = [&rng]() -> uint64_t {
        switch (rng.uniformInt(0, 3)) {
          case 0:
            return 0;
          case 1:
            return ~0ull;  // max varint
          case 2:
            return rng.uniformInt(0, 0xffffffffull);
          default:
            return rng.next();
        }
    };
    auto boundaryU32 = [&rng]() -> uint32_t {
        switch (rng.uniformInt(0, 2)) {
          case 0:
            return 0;
          case 1:
            return 0xffffffffu;
          default:
            return static_cast<uint32_t>(
                rng.uniformInt(0, 0xffffffffull));
        }
    };

    size_t shortCount = rng.uniformInt(0, 6);
    for (size_t i = 0; i < shortCount; ++i) {
        flow::SfVector sf;
        size_t n = rng.uniformInt(1, 50);
        for (size_t k = 0; k < n; ++k)
            sf.values.push_back(static_cast<uint16_t>(
                rng.uniformInt(0, 0xff)));
        d.shortTemplates.push_back(std::move(sf));
    }

    size_t longCount = rng.uniformInt(0, 3);
    for (size_t i = 0; i < longCount; ++i) {
        fccc::LongTemplate tmpl;
        size_t n = rng.uniformInt(1, 120);
        for (size_t k = 0; k < n; ++k) {
            tmpl.sValues.push_back(static_cast<uint16_t>(
                rng.uniformInt(0, 0xff)));
            tmpl.iptUs.push_back(boundaryU64());
        }
        d.longTemplates.push_back(std::move(tmpl));
    }

    size_t addrCount = rng.uniformInt(0, 40);
    bool anyTemplates = shortCount + longCount > 0;
    size_t flowCount = (addrCount > 0 && anyTemplates)
        ? rng.uniformInt(0, 300)
        : 0;
    for (size_t i = 0; i < addrCount; ++i)
        d.addresses.push_back(boundaryU32());

    uint64_t timestamp = 0;
    for (size_t i = 0; i < flowCount; ++i) {
        fccc::TimeSeqRecord rec;
        // Sorted timestamps with occasional huge (varint-boundary)
        // jumps, capped so the sequence never wraps; the first
        // record may sit at 0.
        if (i > 0 || rng.chance(0.5)) {
            uint64_t headroom = ~0ull - timestamp;
            uint64_t cap = rng.chance(0.05) ? ~0ull >> 1
                                            : uint64_t{100000};
            timestamp += rng.uniformInt(0, std::min(headroom, cap));
        }
        rec.firstTimestampUs = timestamp;
        bool canLong = longCount > 0;
        bool canShort = shortCount > 0;
        rec.isLong = canLong && (!canShort || rng.chance(0.3));
        rec.templateIndex = static_cast<uint32_t>(rng.uniformInt(
            0, (rec.isLong ? longCount : shortCount) - 1));
        if (!rec.isLong)
            rec.rttUs = boundaryU32();
        rec.addressIndex = static_cast<uint32_t>(
            rng.uniformInt(0, addrCount - 1));
        d.timeSeq.push_back(rec);
    }
    return d;
}

/** Field-by-field equality (chunkSizes compared separately). */
void
expectSameDatasets(const fccc::Datasets &a, const fccc::Datasets &b)
{
    EXPECT_EQ(a.weights.w1, b.weights.w1);
    EXPECT_EQ(a.weights.w2, b.weights.w2);
    EXPECT_EQ(a.weights.w3, b.weights.w3);
    EXPECT_EQ(a.shortTemplates, b.shortTemplates);
    EXPECT_EQ(a.longTemplates, b.longTemplates);
    EXPECT_EQ(a.addresses, b.addresses);
    EXPECT_EQ(a.timeSeq, b.timeSeq);
}

} // namespace

TEST(ColumnarFuzz, RandomDatasetsRoundTripAllContainersAllBackends)
{
    util::Rng rng(20050713);
    for (int iter = 0; iter < 40; ++iter) {
        fccc::Datasets d = randomDatasets(rng);
        uint32_t chunkRecords = static_cast<uint32_t>(
            rng.uniformInt(0, 3) * rng.uniformInt(1, 64));
        fccc::SizeBreakdown sizes;

        // FCC1.
        auto v1 = fccc::serialize(d, sizes);
        fccc::Datasets d1 = fccc::deserialize(v1);
        expectSameDatasets(d, d1);
        EXPECT_TRUE(d1.chunkSizes.empty());

        // FCC2 (chunkRecords == 0 degrades to FCC1 by contract).
        auto v2 = fccc::serializeChunked(d, chunkRecords, sizes);
        fccc::Datasets d2 = fccc::deserialize(v2);
        expectSameDatasets(d, d2);

        // FCC3 under every backend.
        for (backend::EntropyBackend b : allBackends) {
            auto v3 = fccc::serializeColumnar(d, chunkRecords, b,
                                              sizes);
            fccc::Datasets d3 = fccc::deserialize(v3);
            expectSameDatasets(d, d3);
            EXPECT_EQ(d3.chunkSizes, d2.chunkSizes)
                << backendName(b);
            // The breakdown accounts for every stored byte.
            EXPECT_EQ(sizes.total(), v3.size()) << backendName(b);
        }
    }
}

TEST(ColumnarFuzz, ColumnStatsDescribeTheWireBytes)
{
    util::Rng rng(77);
    fccc::Datasets d = randomDatasets(rng);
    fccc::SizeBreakdown sizes;
    std::vector<fccc::ColumnStat> columns;
    auto bytes = fccc::serializeColumnar(
        d, 64, backend::EntropyBackend::Deflate, sizes, nullptr,
        &columns);
    ASSERT_EQ(columns.size(), 12u);

    fccc::ContainerStat stat;
    fccc::Datasets back = fccc::deserialize(bytes, nullptr, &stat);
    expectSameDatasets(d, back);
    EXPECT_EQ(stat.version, 3);
    EXPECT_EQ(stat.sizes.total(), bytes.size());
    ASSERT_EQ(stat.columns.size(), columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
        EXPECT_EQ(stat.columns[c].name, columns[c].name);
        EXPECT_EQ(stat.columns[c].codec, columns[c].codec);
        EXPECT_EQ(stat.columns[c].backend, columns[c].backend);
        EXPECT_EQ(stat.columns[c].values, columns[c].values);
        EXPECT_EQ(stat.columns[c].encodedBytes,
                  columns[c].encodedBytes);
        EXPECT_EQ(stat.columns[c].storedBytes,
                  columns[c].storedBytes);
    }
}

TEST(ColumnarFuzz, PoolAndPoolFreeBytesIdentical)
{
    util::Rng rng(1234);
    util::ThreadPool pool(4);
    for (int iter = 0; iter < 8; ++iter) {
        fccc::Datasets d = randomDatasets(rng);
        fccc::SizeBreakdown sizes;
        auto solo = fccc::serializeColumnar(
            d, 16, backend::EntropyBackend::Deflate, sizes);
        auto pooled = fccc::serializeColumnar(
            d, 16, backend::EntropyBackend::Deflate, sizes, &pool);
        EXPECT_EQ(solo, pooled);
        expectSameDatasets(fccc::deserialize(solo),
                           fccc::deserialize(pooled, &pool));
    }
}

TEST(ColumnarFuzz, CorruptAndTruncatedContainersThrowCleanly)
{
    util::Rng rng(0xbad);
    fccc::Datasets d = randomDatasets(rng);
    fccc::SizeBreakdown sizes;
    auto bytes = fccc::serializeColumnar(
        d, 32, backend::EntropyBackend::Deflate, sizes);

    // Every proper prefix must be rejected, never crash.
    for (size_t len = 0; len < bytes.size();
         len += 1 + len / 16) {
        std::span<const uint8_t> cut(bytes.data(), len);
        EXPECT_THROW(fccc::deserialize(cut), util::Error)
            << "prefix " << len;
    }

    // Single-byte corruption must either throw or decode to
    // *something* — malformed constructs may not crash. (The
    // entropy payloads have no checksum, so a flipped payload byte
    // can legally decode to different, still-valid columns.)
    for (size_t pos = 0; pos < bytes.size();
         pos += 1 + pos / 32) {
        auto bad = bytes;
        bad[pos] ^= 0x5a;
        try {
            fccc::deserialize(bad);
        } catch (const util::Error &) {
            // expected for most positions
        }
    }
}

TEST(Columnar, CompressorWritesAndReadsFcc3)
{
    // End-to-end through the FccTraceCompressor config surface.
    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.backend = backend::EntropyBackend::Range;
    fccc::FccTraceCompressor codec(cfg);

    util::Rng rng(99);
    fccc::Datasets d = randomDatasets(rng);
    d.weights = cfg.weights;
    fccc::SizeBreakdown sizes;
    auto bytes =
        fccc::serializeDatasets(d, cfg, sizes);
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[3], '3');
    expectSameDatasets(d, fccc::deserialize(bytes));
}
