/**
 * @file
 * Edge-case and property sweeps across modules: the Van Jacobson
 * escape paths (large time deltas, sequence regressions, field
 * churn), characterizer behaviour over a grid of legal weight
 * vectors, cache-geometry invariants, and distribution/stat
 * properties that must hold for any parameterization.
 */

#include <gtest/gtest.h>

#include "codec/vj/vj.hpp"
#include "flow/characterize.hpp"
#include "memsim/cache_model.hpp"
#include "trace/trace.hpp"
#include "trace/tsh.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

using namespace fcc;
namespace vj = fcc::codec::vj;

namespace {

trace::PacketRecord
basePacket()
{
    trace::PacketRecord pkt;
    pkt.srcIp = 0x0a000001;
    pkt.dstIp = 0xc0a80001;
    pkt.srcPort = 1234;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Ack;
    pkt.payloadBytes = 100;
    pkt.window = 8192;
    return pkt;
}

void
expectVjLossless(const trace::Trace &t)
{
    vj::VjTraceCompressor codec;
    trace::Trace back = codec.decompress(codec.compress(t));
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].timestampUs(), t[i].timestampUs()) << i;
        EXPECT_EQ(back[i].seq, t[i].seq) << i;
        EXPECT_EQ(back[i].ack, t[i].ack) << i;
        EXPECT_EQ(back[i].window, t[i].window) << i;
        EXPECT_EQ(back[i].ipId, t[i].ipId) << i;
        EXPECT_EQ(back[i].payloadBytes, t[i].payloadBytes) << i;
        EXPECT_EQ(back[i].tcpFlags, t[i].tcpFlags) << i;
    }
}

} // namespace

// ---- Van Jacobson escape paths --------------------------------------------

TEST(VjEdges, HugeTimeDeltaTakesEscape)
{
    trace::Trace t;
    auto pkt = basePacket();
    pkt.timestampNs = 0;
    t.add(pkt);
    // 2 minutes later: far beyond the 16-bit microsecond field.
    pkt.timestampNs = 120ull * 1000000000ull;
    pkt.seq += pkt.payloadBytes;
    ++pkt.ipId;
    t.add(pkt);
    expectVjLossless(t);
}

TEST(VjEdges, SequenceRegression)
{
    // Retransmission: sequence number goes backwards.
    trace::Trace t;
    auto pkt = basePacket();
    pkt.timestampNs = 0;
    pkt.seq = 5000;
    t.add(pkt);
    pkt.timestampNs = 1000000;
    pkt.seq = 4000;  // regression
    t.add(pkt);
    expectVjLossless(t);
}

TEST(VjEdges, SequenceWraparound)
{
    trace::Trace t;
    auto pkt = basePacket();
    pkt.timestampNs = 0;
    pkt.seq = 0xffffff80u;
    pkt.payloadBytes = 1000;  // wraps past 2^32
    t.add(pkt);
    pkt.timestampNs = 1000000;
    pkt.seq += 1000;  // wrapped value
    ++pkt.ipId;
    t.add(pkt);
    expectVjLossless(t);
}

TEST(VjEdges, IpIdNonMonotonic)
{
    trace::Trace t;
    auto pkt = basePacket();
    for (uint16_t id : {100, 99, 65535, 0, 7}) {
        pkt.ipId = id;
        t.add(pkt);
        pkt.timestampNs += 500000;
        pkt.seq += pkt.payloadBytes;
    }
    expectVjLossless(t);
}

TEST(VjEdges, EveryFieldChurnsEveryPacket)
{
    util::Rng rng(5);
    trace::Trace t;
    auto pkt = basePacket();
    uint64_t ts = 0;
    for (int i = 0; i < 500; ++i) {
        ts += rng.uniformInt(1, 100000000);
        pkt.timestampNs = ts * 1000;
        pkt.seq = static_cast<uint32_t>(rng.next());
        pkt.ack = static_cast<uint32_t>(rng.next());
        pkt.window = static_cast<uint16_t>(rng.next());
        pkt.ipId = static_cast<uint16_t>(rng.next());
        pkt.payloadBytes = static_cast<uint16_t>(
            rng.uniformInt(0, 1460));
        pkt.tcpFlags = static_cast<uint8_t>(rng.uniformInt(0, 63));
        t.add(pkt);
    }
    expectVjLossless(t);
}

TEST(VjEdges, ManyInterleavedFlows)
{
    util::Rng rng(6);
    trace::Trace t;
    uint64_t ts = 0;
    for (int i = 0; i < 2000; ++i) {
        auto pkt = basePacket();
        pkt.srcPort = static_cast<uint16_t>(
            1000 + rng.uniformInt(0, 99));  // 100 flows
        ts += rng.uniformInt(1, 1000);
        pkt.timestampNs = ts * 1000;
        pkt.seq = static_cast<uint32_t>(i) * 13;
        t.add(pkt);
    }
    expectVjLossless(t);
}

TEST(VjEdges, NonTcpPacketsSurvive)
{
    trace::Trace t;
    auto pkt = basePacket();
    pkt.protocol = trace::ip_proto::Udp;
    pkt.tcpFlags = 0;
    for (int i = 0; i < 10; ++i) {
        pkt.timestampNs = static_cast<uint64_t>(i) * 1000000;
        pkt.ipId = static_cast<uint16_t>(i);
        t.add(pkt);
    }
    expectVjLossless(t);
}

// ---- characterizer over a weight grid --------------------------------------

class WeightGrid
    : public ::testing::TestWithParam<flow::Weights>
{};

TEST_P(WeightGrid, EncodeDecodeBijection)
{
    flow::Characterizer chi(GetParam());
    for (int f1 = 0; f1 <= 3; ++f1) {
        for (int dep = 0; dep <= 1; ++dep) {
            for (int f3 = 0; f3 <= 2; ++f3) {
                flow::PacketClass cls;
                cls.flag = static_cast<flow::FlagClass>(f1);
                cls.dependent = dep == 1;
                cls.size = static_cast<flow::SizeClass>(f3);
                EXPECT_EQ(chi.decode(chi.encode(cls)), cls);
            }
        }
    }
}

TEST_P(WeightGrid, DistinctClassesDistinctCodes)
{
    flow::Characterizer chi(GetParam());
    std::set<uint16_t> codes;
    for (int f1 = 0; f1 <= 3; ++f1)
        for (int dep = 0; dep <= 1; ++dep)
            for (int f3 = 0; f3 <= 2; ++f3) {
                flow::PacketClass cls{
                    static_cast<flow::FlagClass>(f1), dep == 1,
                    static_cast<flow::SizeClass>(f3)};
                codes.insert(chi.encode(cls));
            }
    EXPECT_EQ(codes.size(), 24u);
}

INSTANTIATE_TEST_SUITE_P(
    LegalWeights, WeightGrid,
    ::testing::Values(flow::Weights{7, 3, 1}, flow::Weights{16, 4, 1},
                      flow::Weights{16, 8, 2},
                      flow::Weights{32, 8, 2},
                      flow::Weights{64, 16, 4},
                      flow::Weights{81, 9, 3},
                      flow::Weights{10, 3, 1}),
    [](const auto &info) {
        // Built via append (not operator+) to dodge GCC 12's spurious
        // -Wrestrict on "literal" + std::string (GCC PR 105329).
        std::string name = "w";
        name += std::to_string(info.param.w1);
        name += '_';
        name += std::to_string(info.param.w2);
        name += '_';
        name += std::to_string(info.param.w3);
        return name;
    });

// ---- cache geometry sweep ---------------------------------------------------

struct CacheGeometry
{
    uint32_t sizeKb;
    uint32_t ways;
};

class CacheSweep : public ::testing::TestWithParam<CacheGeometry>
{};

TEST_P(CacheSweep, SequentialThenRepeatBehaviour)
{
    auto [sizeKb, ways] = GetParam();
    memsim::CacheConfig cfg;
    cfg.sizeBytes = sizeKb * 1024;
    cfg.lineBytes = 32;
    cfg.ways = ways;
    memsim::CacheModel cache(cfg);

    uint32_t lines = cfg.sizeBytes / cfg.lineBytes;
    // First pass over exactly the cache capacity: all misses.
    for (uint32_t i = 0; i < lines; ++i)
        EXPECT_FALSE(cache.access(static_cast<uint64_t>(i) * 32));
    // Second pass: everything fits, so all hits (true LRU keeps the
    // working set resident regardless of associativity here because
    // lines map uniformly).
    for (uint32_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(static_cast<uint64_t>(i) * 32));
    EXPECT_EQ(cache.misses(), lines);
    EXPECT_EQ(cache.hits(), lines);
}

TEST_P(CacheSweep, OverCapacityStreamingNeverHits)
{
    auto [sizeKb, ways] = GetParam();
    memsim::CacheConfig cfg;
    cfg.sizeBytes = sizeKb * 1024;
    cfg.lineBytes = 32;
    cfg.ways = ways;
    memsim::CacheModel cache(cfg);

    // A cyclic stream of 2x capacity under LRU: zero hits forever.
    uint32_t lines = 2 * cfg.sizeBytes / cfg.lineBytes;
    for (int pass = 0; pass < 3; ++pass)
        for (uint32_t i = 0; i < lines; ++i)
            EXPECT_FALSE(cache.access(static_cast<uint64_t>(i) * 32))
                << pass << ":" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheGeometry{4, 1}, CacheGeometry{8, 2},
                      CacheGeometry{16, 2}, CacheGeometry{16, 4},
                      CacheGeometry{32, 4}, CacheGeometry{64, 8},
                      CacheGeometry{32, 1}),
    [](const auto &info) {
        return std::to_string(info.param.sizeKb) + "kb" +
               std::to_string(info.param.ways) + "w";
    });

// ---- distribution properties ------------------------------------------------

class ZipfSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfSweep, RankProbabilitiesDecrease)
{
    double s = GetParam();
    util::Rng rng(11);
    util::Zipf dist(100, s);
    std::vector<int> counts(101, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[dist.sample(rng)];
    // Aggregate into rank decades to suppress noise; each decade's
    // mass must not increase for s > 0.
    if (s > 0.0) {
        int prev = 1 << 30;
        for (int decade = 0; decade < 10; ++decade) {
            int mass = 0;
            for (int r = decade * 10 + 1; r <= decade * 10 + 10; ++r)
                mass += counts[r];
            EXPECT_LE(mass, prev + 1500) << "decade " << decade;
            prev = mass;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2,
                                           2.0));
