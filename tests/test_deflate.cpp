/**
 * @file
 * DEFLATE / zlib / gzip codec tests: round trips over adversarial
 * inputs, cross-validation against system zlib in both directions,
 * container integrity checks, and corrupt-stream rejection.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "codec/deflate/deflate.hpp"
#include "codec/deflate/huffman.hpp"
#include "codec/deflate/lz77.hpp"
#include "util/error.hpp"

#if __has_include(<zlib.h>)
#include <zlib.h>
#define FCC_HAVE_ZLIB 1
#endif

namespace fd = fcc::codec::deflate;

namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

/** Deterministic pseudo-random buffer. */
std::vector<uint8_t>
randomBytes(size_t n, uint32_t seed, int alphabet = 256)
{
    std::mt19937 gen(seed);
    std::uniform_int_distribution<int> dist(0, alphabet - 1);
    std::vector<uint8_t> out(n);
    for (auto &b : out)
        b = static_cast<uint8_t>(dist(gen));
    return out;
}

/** Text-like compressible buffer. */
std::vector<uint8_t>
repetitiveBytes(size_t n)
{
    static const std::string phrase =
        "the quick brown fox jumps over the lazy dog. ";
    std::vector<uint8_t> out;
    out.reserve(n);
    while (out.size() < n)
        out.push_back(
            static_cast<uint8_t>(phrase[out.size() % phrase.size()]));
    return out;
}

void
expectRoundTrip(const std::vector<uint8_t> &data)
{
    auto compressed = fd::deflateCompress(data);
    auto restored = fd::inflate(compressed);
    ASSERT_EQ(restored.size(), data.size());
    EXPECT_EQ(restored, data);
}

} // namespace

// ---- LZ77 ------------------------------------------------------------

TEST(Lz77, EmptyInputYieldsNoTokens)
{
    EXPECT_TRUE(fd::lz77Tokenize({}).empty());
}

TEST(Lz77, AllLiteralsForShortInput)
{
    auto data = bytesOf("ab");
    auto tokens = fd::lz77Tokenize(data);
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_TRUE(tokens[0].isLiteral());
    EXPECT_TRUE(tokens[1].isLiteral());
}

TEST(Lz77, FindsRepetition)
{
    auto data = bytesOf("abcabcabcabcabc");
    auto tokens = fd::lz77Tokenize(data);
    bool sawMatch = false;
    for (const auto &tok : tokens)
        sawMatch |= !tok.isLiteral();
    EXPECT_TRUE(sawMatch);
}

TEST(Lz77, TokensReconstructInput)
{
    auto data = randomBytes(5000, 42, 4);  // small alphabet: matches
    auto tokens = fd::lz77Tokenize(data);
    std::vector<uint8_t> rebuilt;
    for (const auto &tok : tokens) {
        if (tok.isLiteral()) {
            rebuilt.push_back(static_cast<uint8_t>(tok.length));
        } else {
            ASSERT_GE(tok.distance, 1);
            ASSERT_LE(tok.distance, rebuilt.size());
            ASSERT_GE(tok.length, fd::minMatch);
            ASSERT_LE(tok.length, fd::maxMatch);
            size_t from = rebuilt.size() - tok.distance;
            for (size_t i = 0; i < tok.length; ++i)
                rebuilt.push_back(rebuilt[from + i]);
        }
    }
    EXPECT_EQ(rebuilt, data);
}

TEST(Lz77, RunOfOneByteUsesOverlappingMatch)
{
    std::vector<uint8_t> data(1000, 'x');
    auto tokens = fd::lz77Tokenize(data);
    // 1 literal plus a few long overlapping matches.
    EXPECT_LT(tokens.size(), 10u);
}

// ---- Huffman ---------------------------------------------------------

TEST(Huffman, SingleSymbolGetsOneBit)
{
    std::vector<uint64_t> freq(10, 0);
    freq[3] = 100;
    auto lens = fd::buildCodeLengths(freq, 15);
    EXPECT_EQ(lens[3], 1);
    for (size_t i = 0; i < lens.size(); ++i) {
        if (i != 3) {
            EXPECT_EQ(lens[i], 0) << i;
        }
    }
}

TEST(Huffman, KraftEqualityForCompleteCode)
{
    std::vector<uint64_t> freq = {50, 30, 10, 5, 3, 2, 1, 1};
    auto lens = fd::buildCodeLengths(freq, 15);
    double kraft = 0;
    for (uint8_t len : lens)
        if (len)
            kraft += std::pow(2.0, -static_cast<double>(len));
    EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(Huffman, RespectsMaxBits)
{
    // Fibonacci-ish frequencies force deep unconstrained trees.
    std::vector<uint64_t> freq;
    uint64_t a = 1, b = 1;
    for (int i = 0; i < 30; ++i) {
        freq.push_back(a);
        uint64_t next = a + b;
        a = b;
        b = next;
    }
    auto lens = fd::buildCodeLengths(freq, 9);
    for (uint8_t len : lens) {
        EXPECT_GE(len, 1);
        EXPECT_LE(len, 9);
    }
    double kraft = 0;
    for (uint8_t len : lens)
        kraft += std::pow(2.0, -static_cast<double>(len));
    EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, OptimalityMatchesEntropyOrdering)
{
    // More frequent symbols never get longer codes.
    std::vector<uint64_t> freq = {100, 50, 25, 12, 6, 3, 1};
    auto lens = fd::buildCodeLengths(freq, 15);
    for (size_t i = 1; i < freq.size(); ++i)
        EXPECT_LE(lens[i - 1], lens[i]);
}

TEST(Huffman, CanonicalCodesAreGapFree)
{
    std::vector<uint8_t> lens = {3, 3, 3, 3, 3, 2, 4, 4};
    auto codes = fd::canonicalCodes(lens);
    // RFC 1951 example: verify prefix-freeness via decode table.
    fd::HuffmanDecoder decoder(lens);
    EXPECT_EQ(decoder.usedSymbols(), 8u);
}

TEST(Huffman, DecoderRejectsOversubscribed)
{
    std::vector<uint8_t> lens = {1, 1, 1};
    EXPECT_THROW(fd::HuffmanDecoder d(lens), fcc::util::Error);
}

TEST(Huffman, DecoderRejectsIncompleteUnlessAllowed)
{
    std::vector<uint8_t> lens = {2, 2, 2};  // one slot missing
    EXPECT_THROW(fd::HuffmanDecoder d(lens), fcc::util::Error);
    EXPECT_NO_THROW(fd::HuffmanDecoder d(lens, true));
}

TEST(Huffman, RoundTripThroughBitstream)
{
    std::vector<uint64_t> freq = {40, 30, 20, 10, 5, 5, 3, 2, 1};
    auto lens = fd::buildCodeLengths(freq, 15);
    auto codes = fd::canonicalCodes(lens);
    fd::HuffmanDecoder decoder(lens);

    std::vector<int> message = {0, 1, 2, 8, 7, 3, 0, 0, 5, 4, 6, 2};
    fcc::util::BitWriter w;
    for (int sym : message)
        w.putHuff(codes[sym], lens[sym]);
    auto bits = w.take();
    fcc::util::BitReader r(bits);
    for (int sym : message)
        EXPECT_EQ(decoder.decode(r), sym);
}

// ---- deflate round trips ----------------------------------------------

TEST(Deflate, EmptyInput)
{
    expectRoundTrip({});
}

TEST(Deflate, OneByte)
{
    expectRoundTrip({0x42});
}

TEST(Deflate, ShortText)
{
    expectRoundTrip(bytesOf("hello, deflate"));
}

TEST(Deflate, AllByteValues)
{
    std::vector<uint8_t> data(256);
    for (int i = 0; i < 256; ++i)
        data[i] = static_cast<uint8_t>(i);
    expectRoundTrip(data);
}

TEST(Deflate, LongRun)
{
    expectRoundTrip(std::vector<uint8_t>(100000, 0xaa));
}

TEST(Deflate, RepetitiveTextCompressesWell)
{
    auto data = repetitiveBytes(50000);
    auto compressed = fd::deflateCompress(data);
    EXPECT_LT(compressed.size(), data.size() / 10);
    EXPECT_EQ(fd::inflate(compressed), data);
}

TEST(Deflate, IncompressibleRandomData)
{
    auto data = randomBytes(65536, 7);
    auto compressed = fd::deflateCompress(data);
    // Stored blocks keep the expansion tiny.
    EXPECT_LT(compressed.size(), data.size() + 64);
    EXPECT_EQ(fd::inflate(compressed), data);
}

TEST(Deflate, MultiBlockInput)
{
    auto data = randomBytes(1 << 20, 13, 16);
    expectRoundTrip(data);
}

TEST(Deflate, MatchesAcrossBlockBoundary)
{
    // Repetition straddling the 32768-token block split.
    auto head = randomBytes(300000, 5, 8);
    std::vector<uint8_t> data = head;
    data.insert(data.end(), head.begin(), head.begin() + 20000);
    expectRoundTrip(data);
}

struct DeflateSweepParam
{
    size_t size;
    int alphabet;
};

class DeflateSweep
    : public ::testing::TestWithParam<DeflateSweepParam>
{};

TEST_P(DeflateSweep, RoundTrip)
{
    auto [size, alphabet] = GetParam();
    auto data = randomBytes(size, static_cast<uint32_t>(size + alphabet),
                            alphabet);
    expectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, DeflateSweep,
    ::testing::Values(DeflateSweepParam{1, 2},
                      DeflateSweepParam{2, 2},
                      DeflateSweepParam{3, 2},
                      DeflateSweepParam{257, 2},
                      DeflateSweepParam{1000, 2},
                      DeflateSweepParam{1000, 3},
                      DeflateSweepParam{4096, 5},
                      DeflateSweepParam{32768, 7},
                      DeflateSweepParam{32769, 7},
                      DeflateSweepParam{65535, 11},
                      DeflateSweepParam{65536, 17},
                      DeflateSweepParam{65537, 31},
                      DeflateSweepParam{200000, 64},
                      DeflateSweepParam{200000, 250}));

// ---- corrupt stream handling -------------------------------------------

TEST(Deflate, RejectsTruncatedStream)
{
    auto compressed = fd::deflateCompress(repetitiveBytes(10000));
    compressed.resize(compressed.size() / 2);
    EXPECT_THROW(fd::inflate(compressed), fcc::util::Error);
}

TEST(Deflate, RejectsReservedBlockType)
{
    // BFINAL=1, BTYPE=3 (reserved).
    std::vector<uint8_t> bad = {0x07};
    EXPECT_THROW(fd::inflate(bad), fcc::util::Error);
}

TEST(Deflate, RejectsBadStoredLength)
{
    // Stored block whose NLEN is not ~LEN.
    std::vector<uint8_t> bad = {0x01, 0x05, 0x00, 0x00, 0x00};
    EXPECT_THROW(fd::inflate(bad), fcc::util::Error);
}

// ---- containers --------------------------------------------------------

TEST(Zlib, RoundTrip)
{
    auto data = repetitiveBytes(20000);
    EXPECT_EQ(fd::zlibDecompress(fd::zlibCompress(data)), data);
}

TEST(Zlib, DetectsCorruptChecksum)
{
    auto stream = fd::zlibCompress(bytesOf("payload"));
    stream.back() ^= 0xff;
    EXPECT_THROW(fd::zlibDecompress(stream), fcc::util::Error);
}

TEST(Gzip, RoundTrip)
{
    auto data = randomBytes(30000, 21, 40);
    EXPECT_EQ(fd::gzipDecompress(fd::gzipCompress(data)), data);
}

TEST(Gzip, DetectsCorruptCrc)
{
    auto stream = fd::gzipCompress(bytesOf("payload"));
    stream[stream.size() - 5] ^= 0xff;
    EXPECT_THROW(fd::gzipDecompress(stream), fcc::util::Error);
}

TEST(Gzip, RejectsBadMagic)
{
    auto stream = fd::gzipCompress(bytesOf("payload"));
    stream[0] = 0;
    EXPECT_THROW(fd::gzipDecompress(stream), fcc::util::Error);
}

#ifdef FCC_HAVE_ZLIB
// ---- cross-validation against system zlib ------------------------------

TEST(ZlibInterop, SystemZlibInflatesOurStreams)
{
    auto data = repetitiveBytes(150000);
    auto ours = fd::zlibCompress(data);

    std::vector<uint8_t> out(data.size());
    uLongf outLen = out.size();
    int rc = ::uncompress(out.data(), &outLen, ours.data(),
                          static_cast<uLong>(ours.size()));
    ASSERT_EQ(rc, Z_OK);
    out.resize(outLen);
    EXPECT_EQ(out, data);
}

TEST(ZlibInterop, WeInflateSystemZlibStreams)
{
    auto data = randomBytes(150000, 99, 30);
    uLongf bound = ::compressBound(static_cast<uLong>(data.size()));
    std::vector<uint8_t> theirs(bound);
    int rc = ::compress2(theirs.data(), &bound, data.data(),
                         static_cast<uLong>(data.size()), 9);
    ASSERT_EQ(rc, Z_OK);
    theirs.resize(bound);
    EXPECT_EQ(fd::zlibDecompress(theirs), data);
}

TEST(ZlibInterop, RandomBuffersBothDirections)
{
    for (uint32_t seed = 1; seed <= 6; ++seed) {
        auto data = randomBytes(20000 + seed * 7777, seed,
                                seed % 2 ? 5 : 200);

        auto ours = fd::zlibCompress(data);
        std::vector<uint8_t> out(data.size());
        uLongf outLen = out.size();
        ASSERT_EQ(::uncompress(out.data(), &outLen, ours.data(),
                               static_cast<uLong>(ours.size())),
                  Z_OK);
        out.resize(outLen);
        EXPECT_EQ(out, data) << "seed " << seed;

        uLongf bound = ::compressBound(
            static_cast<uLong>(data.size()));
        std::vector<uint8_t> theirs(bound);
        ASSERT_EQ(::compress2(theirs.data(), &bound, data.data(),
                              static_cast<uLong>(data.size()), 6),
                  Z_OK);
        theirs.resize(bound);
        EXPECT_EQ(fd::zlibDecompress(theirs), data)
            << "seed " << seed;
    }
}
#endif  // FCC_HAVE_ZLIB
