/**
 * @file
 * Integration tests over the experiment drivers: these assert the
 * paper's qualitative claims end to end — Figure 1's size ordering,
 * the §5 ratio table, and Figures 2/3's "original ≈ decompressed,
 * random and fracexp diverge" similarity structure.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"
#include "util/stats.hpp"

namespace ex = fcc::experiments;
namespace memsim = fcc::memsim;
namespace trace = fcc::trace;

namespace {

trace::WebGenConfig
smallWorkload()
{
    trace::WebGenConfig cfg;
    cfg.seed = 1001;
    cfg.durationSec = 12.0;
    cfg.flowsPerSec = 80.0;
    return cfg;
}

} // namespace

TEST(Figure1, SizesOrderedAtEverySlice)
{
    auto rows = ex::runFileSizeComparison(smallWorkload(),
                                          {3, 6, 9, 12});
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_GT(row.packets, 0u);
        EXPECT_LT(row.gzipBytes, row.originalTshBytes);
        EXPECT_LT(row.vjBytes, row.gzipBytes);
        EXPECT_LT(row.peuhkuriBytes, row.vjBytes);
        EXPECT_LT(row.fccBytes, row.peuhkuriBytes);
    }
    // Sizes grow with elapsed time for every series.
    for (size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GT(rows[i].originalTshBytes,
                  rows[i - 1].originalTshBytes);
        EXPECT_GT(rows[i].fccBytes, rows[i - 1].fccBytes);
    }
}

TEST(Figure1, FccStaysNearThreePercent)
{
    auto rows = ex::runFileSizeComparison(smallWorkload(), {12});
    double ratio = static_cast<double>(rows[0].fccBytes) /
                   static_cast<double>(rows[0].originalTshBytes);
    EXPECT_GT(ratio, 0.01);
    EXPECT_LT(ratio, 0.06);
}

TEST(RatioTable, MeasuredTracksAnalytical)
{
    auto rows = ex::runRatioComparison(smallWorkload());
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_GT(row.measured, 0.0) << row.method;
        EXPECT_LT(row.measured, 1.0) << row.method;
        if (row.analytical > 0.0) {
            // Model and measurement agree within a factor of ~2.5
            // (the models ignore container/template overheads).
            EXPECT_LT(row.measured / row.analytical, 2.5)
                << row.method;
            EXPECT_GT(row.measured / row.analytical, 0.4)
                << row.method;
        }
    }
}

class MemoryValidation : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ex::ValidationConfig cfg;
        cfg.webCfg = smallWorkload();
        results_ = new std::vector<ex::ValidationResult>(
            ex::runMemoryValidation(cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete results_;
        results_ = nullptr;
    }

    static const std::vector<memsim::PacketSample> &
    samplesOf(ex::ValidationTrace kind)
    {
        for (const auto &result : *results_)
            if (result.trace == kind)
                return result.samples;
        throw std::logic_error("trace not found");
    }

    static fcc::util::Ecdf
    accessEcdf(ex::ValidationTrace kind)
    {
        fcc::util::Ecdf ecdf;
        for (const auto &sample : samplesOf(kind))
            ecdf.add(sample.accesses);
        return ecdf;
    }

    static std::vector<ex::ValidationResult> *results_;
};

std::vector<ex::ValidationResult> *MemoryValidation::results_ =
    nullptr;

TEST_F(MemoryValidation, AllFourTracesProfiled)
{
    ASSERT_EQ(results_->size(), 4u);
    size_t n = samplesOf(ex::ValidationTrace::Original).size();
    EXPECT_GT(n, 5000u);
    for (const auto &result : *results_)
        EXPECT_EQ(result.samples.size(), n)
            << ex::validationTraceName(result.trace);
}

TEST_F(MemoryValidation, Figure2DecompressedClosestToOriginal)
{
    auto orig = accessEcdf(ex::ValidationTrace::Original);
    auto decomp = accessEcdf(ex::ValidationTrace::Decompressed);
    auto random = accessEcdf(ex::ValidationTrace::Random);
    auto fracexp = accessEcdf(ex::ValidationTrace::FracExp);

    double dDecomp = orig.ksDistance(decomp);
    double dRandom = orig.ksDistance(random);
    double dFracexp = orig.ksDistance(fracexp);

    // The paper's core claim: the decompressed trace behaves like
    // the original while the synthetic comparison traces do not.
    EXPECT_LT(dDecomp, dRandom);
    EXPECT_LT(dDecomp, dFracexp);
    EXPECT_LT(dDecomp, 0.45);
    EXPECT_GT(dRandom, 0.5);
    EXPECT_GT(dFracexp, 0.5);
}

TEST_F(MemoryValidation, Figure2MeanAccessesMatch)
{
    double orig =
        memsim::meanAccesses(samplesOf(ex::ValidationTrace::Original));
    double decomp = memsim::meanAccesses(
        samplesOf(ex::ValidationTrace::Decompressed));
    double random =
        memsim::meanAccesses(samplesOf(ex::ValidationTrace::Random));
    EXPECT_NEAR(decomp, orig, orig * 0.2);
    EXPECT_LT(random, orig * 0.6);
}

TEST_F(MemoryValidation, Figure3RandomDiverges)
{
    auto orig =
        memsim::missRateBuckets(samplesOf(ex::ValidationTrace::Original));
    auto decomp = memsim::missRateBuckets(
        samplesOf(ex::ValidationTrace::Decompressed));
    auto random =
        memsim::missRateBuckets(samplesOf(ex::ValidationTrace::Random));

    // Decompressed matches original far better than random does in
    // the low-miss bucket (paper: random has almost no packets
    // below 5 % while original/decompressed have the majority).
    double gapDecomp = std::abs(orig.share[0] - decomp.share[0]);
    double gapRandom = std::abs(orig.share[0] - random.share[0]);
    EXPECT_LT(gapDecomp, gapRandom);
    EXPECT_LT(random.share[0], 0.1);
    EXPECT_GT(orig.share[0], 0.25);
    EXPECT_GT(decomp.share[0], 0.25);
    // Random's mass sits in the high-miss buckets.
    EXPECT_GT(random.share[2] + random.share[3], 0.7);
}

TEST(ValidationNames, Labels)
{
    EXPECT_STREQ(ex::validationTraceName(
                     ex::ValidationTrace::Original),
                 "original");
    EXPECT_STREQ(ex::validationTraceName(
                     ex::ValidationTrace::FracExp),
                 "fracexp");
    EXPECT_STREQ(ex::kernelName(ex::Kernel::Rtr), "rtr");
}

TEST(ValidationKernels, NatAndRtrAlsoSeparateTraces)
{
    // The similarity structure holds for the other two kernels too.
    for (ex::Kernel kernel : {ex::Kernel::Nat, ex::Kernel::Rtr}) {
        ex::ValidationConfig cfg;
        cfg.webCfg = smallWorkload();
        cfg.webCfg.durationSec = 6.0;
        cfg.kernel = kernel;
        auto results = ex::runMemoryValidation(cfg);
        ASSERT_EQ(results.size(), 4u);

        double orig = memsim::meanAccesses(results[0].samples);
        double decomp = memsim::meanAccesses(results[1].samples);
        double random = memsim::meanAccesses(results[2].samples);
        EXPECT_NEAR(decomp, orig, orig * 0.25)
            << ex::kernelName(kernel);
        EXPECT_LT(random, orig) << ex::kernelName(kernel);
    }
}
