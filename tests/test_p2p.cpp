/**
 * @file
 * Future-work study (paper §7): does the method still work for
 * P2P-style traffic? These tests exercise the P2P traffic mix —
 * symmetric exchanges on ephemeral ports, heavier long-flow share —
 * through the whole compression pipeline.
 */

#include <gtest/gtest.h>

#include <set>

#include "codec/compressor.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

trace::Trace
p2pTrace(uint64_t seed = 61, double seconds = 10.0)
{
    trace::WebTrafficGenerator gen(
        trace::p2pConfig(seed, seconds, 80.0));
    return gen.generate();
}

} // namespace

TEST(P2p, MixUsesEphemeralServerPorts)
{
    auto tr = p2pTrace();
    flow::FlowTable table;
    for (const auto &f : table.assemble(tr)) {
        EXPECT_GE(f.serverPort, 6881);
        EXPECT_LE(f.serverPort, 6999);
    }
}

TEST(P2p, BothDirectionsCarryPayload)
{
    auto tr = p2pTrace();
    flow::FlowTable table;
    uint64_t clientPayload = 0, serverPayload = 0;
    for (const auto &f : table.assemble(tr)) {
        for (size_t i = 0; i < f.size(); ++i) {
            const auto &pkt = tr[f.packetIndex[i]];
            if (pkt.payloadBytes <= 640)
                continue;  // skip requests; count object data
            (f.fromClient[i] ? clientPayload : serverPayload) +=
                pkt.payloadBytes;
        }
    }
    // Symmetric-ish: neither side below a third of the other.
    EXPECT_GT(clientPayload * 3, serverPayload);
    EXPECT_GT(serverPayload * 3, clientPayload);
}

TEST(P2p, HeavierLongFlowShareThanWeb)
{
    auto p2p = p2pTrace(3, 20.0);
    trace::WebGenConfig webCfg;
    webCfg.seed = 3;
    webCfg.durationSec = 20.0;
    webCfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator webGen(webCfg);
    auto web = webGen.generate();

    flow::FlowTable table;
    auto p2pStats = flow::computeFlowStats(table.assemble(p2p), p2p);
    auto webStats = flow::computeFlowStats(table.assemble(web), web);
    EXPECT_LT(p2pStats.shortFlowShare(), webStats.shortFlowShare());
    EXPECT_LT(p2pStats.shortPacketShare(),
              webStats.shortPacketShare());
}

TEST(P2p, FccStillCompressesAndRoundTrips)
{
    auto tr = p2pTrace(7, 15.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    auto bytes = codec.compressWithStats(tr, stats);

    // P2P still compresses well (more long flows, so somewhat worse
    // than web's ~3 %), and structure is preserved.
    double ratio = static_cast<double>(bytes.size()) /
                   static_cast<double>(tr.size() *
                                       trace::tshRecordBytes);
    EXPECT_LT(ratio, 0.15);
    EXPECT_GT(stats.hitRate(), 0.7);

    auto back = codec.decompress(bytes);
    EXPECT_EQ(back.size(), tr.size());
    flow::FlowTable table;
    auto origStats = flow::computeFlowStats(table.assemble(tr), tr);
    auto backStats =
        flow::computeFlowStats(table.assemble(back), back);
    EXPECT_EQ(backStats.flows, origStats.flows);
    EXPECT_EQ(backStats.lengthCounts, origStats.lengthCounts);
}

TEST(P2p, NeedsMoreClustersThanWeb)
{
    // The paper restricted itself to Web traffic because of its
    // homogeneity; P2P's symmetric exchanges produce more distinct
    // SF vectors. Quantify that conjecture.
    auto p2p = p2pTrace(9, 15.0);
    trace::WebGenConfig webCfg;
    webCfg.seed = 9;
    webCfg.durationSec = 15.0;
    webCfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator webGen(webCfg);
    auto web = webGen.generate();

    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats p2pStats, webStats;
    codec.compressWithStats(p2p, p2pStats);
    codec.compressWithStats(web, webStats);

    double p2pClustersPerFlow =
        static_cast<double>(p2pStats.shortTemplatesCreated) /
        static_cast<double>(p2pStats.shortFlows);
    double webClustersPerFlow =
        static_cast<double>(webStats.shortTemplatesCreated) /
        static_cast<double>(webStats.shortFlows);
    EXPECT_GT(p2pClustersPerFlow, webClustersPerFlow);
}

TEST(P2p, AllBaselinesStillOrdered)
{
    auto tr = p2pTrace(11, 10.0);
    double prev = 1.0;
    for (const auto &codec : codec::makeAllCodecs()) {
        double ratio = codec::measure(*codec, tr).ratio();
        EXPECT_LT(ratio, prev) << codec->name();
        prev = ratio;
    }
}
