/**
 * @file
 * Streaming trace I/O subsystem tests: TraceSource/TraceSink per
 * format, magic-byte auto-detection (including gzip unwrapping and
 * truncated headers), the pcapng reader on multi-interface and
 * multi-section files, pcap timestamp-fraction validation across
 * both magics and byte orders, the resumable inflate / gzip byte
 * source, FCC2 byte-identity across input formats, and the
 * bounded-memory guarantee on a multi-GB synthetic input.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "codec/deflate/deflate.hpp"
#include "codec/deflate/inflate_stream.hpp"
#include "codec/fcc/stream.hpp"
#include "trace/pcap.hpp"
#include "trace/pcapng.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"
#include "util/io.hpp"

#include "test_common.hpp"

using namespace fcc;

namespace {

/** Explicit TSH spec for the raw 44-byte record fixtures. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

trace::Trace
webTrace(uint64_t seed, double seconds)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

using fcc::test::tempPath;

void
writeBytes(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

bool
sameHeaders(const trace::Trace &a, const trace::Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.srcIp != y.srcIp || x.dstIp != y.dstIp ||
            x.srcPort != y.srcPort || x.dstPort != y.dstPort ||
            x.tcpFlags != y.tcpFlags ||
            x.payloadBytes != y.payloadBytes || x.seq != y.seq ||
            x.ack != y.ack || x.window != y.window ||
            x.ipId != y.ipId)
            return false;
    }
    return true;
}

/** Byte-swap every header field of a pcap buffer (for reader tests). */
std::vector<uint8_t>
byteSwapPcap(std::vector<uint8_t> file)
{
    auto swap32at = [&file](size_t pos) {
        std::swap(file[pos], file[pos + 3]);
        std::swap(file[pos + 1], file[pos + 2]);
    };
    auto swap16at = [&file](size_t pos) {
        std::swap(file[pos], file[pos + 1]);
    };
    swap32at(0);            // magic
    swap16at(4);            // version major
    swap16at(6);            // version minor
    swap32at(8);            // thiszone
    swap32at(12);           // sigfigs
    swap32at(16);           // snaplen
    swap32at(20);           // linktype
    size_t pos = 24;
    while (pos + 16 <= file.size()) {
        uint32_t capLen = static_cast<uint32_t>(file[pos + 8]) |
                          static_cast<uint32_t>(file[pos + 9]) << 8 |
                          static_cast<uint32_t>(file[pos + 10]) << 16 |
                          static_cast<uint32_t>(file[pos + 11]) << 24;
        swap32at(pos);
        swap32at(pos + 4);
        swap32at(pos + 8);
        swap32at(pos + 12);
        pos += 16 + capLen;
    }
    return file;
}

/**
 * True when a sanitizer instruments this build. Sanitizer shadow
 * memory stays resident after madvise(MADV_DONTNEED) on the
 * application pages, so VmHWM-based bounds are meaningless there —
 * the RSS assertions are relaxed and the synthetic workloads
 * shrunk (instrumented parsing is ~10x slower).
 */
constexpr bool
underSanitizer()
{
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

/** Peak resident set size (VmHWM) of this process, in bytes. */
uint64_t
peakRssBytes()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            uint64_t kb = 0;
            std::sscanf(line.c_str(), "VmHWM: %llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            return kb * 1024;
        }
    }
    return 0;
}

} // namespace

// ---- TSH source/sink ------------------------------------------------------

TEST(TraceIo, TshSourceMatchesBatchReader)
{
    trace::Trace original = webTrace(41, 4.0);
    std::string path = tempPath("io_src.tsh");
    trace::writeTshFile(original, path);

    for (bool mmapped : {true, false}) {
        trace::TshSource src(util::openByteSource(path, mmapped));
        trace::Trace streamed = trace::readAllPackets(src);
        EXPECT_TRUE(sameHeaders(original, streamed));
        EXPECT_EQ(src.bytesConsumed(),
                  original.size() * trace::tshRecordBytes);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, TshSinkMatchesBatchWriter)
{
    trace::Trace original = webTrace(42, 3.0);
    std::string path = tempPath("io_sink.tsh");
    {
        trace::TshSink sink(
            std::make_unique<util::FileByteSink>(path));
        trace::writeAllPackets(sink, original);
    }
    EXPECT_EQ(readBytes(path), trace::writeTsh(original));
    std::remove(path.c_str());
}

TEST(TraceIo, TshSourceRejectsPartialRecord)
{
    std::string path = tempPath("io_partial.tsh");
    trace::Trace one;
    one.add(trace::PacketRecord());
    auto bytes = trace::writeTsh(one);
    bytes.resize(bytes.size() - 5);
    writeBytes(path, bytes);

    trace::TshSource src(util::openByteSource(path));
    std::vector<trace::PacketRecord> batch(16);
    EXPECT_THROW(src.read(batch), util::Error);
    std::remove(path.c_str());
}

// ---- pcap: both magics, both byte orders ----------------------------------

TEST(TraceIo, PcapRoundTripMicrosecondBothOrders)
{
    trace::Trace original = webTrace(43, 2.0);
    auto native = trace::writePcap(original, /*nanos=*/false);
    auto swapped = byteSwapPcap(native);

    for (const auto &file : {native, swapped}) {
        trace::Trace back = trace::readPcap(file);
        ASSERT_EQ(back.size(), original.size());
        EXPECT_TRUE(sameHeaders(original, back));
        for (size_t i = 0; i < back.size(); ++i)
            EXPECT_EQ(back[i].timestampUs(),
                      original[i].timestampUs());
    }
}

TEST(TraceIo, PcapRoundTripNanosecondBothOrders)
{
    trace::Trace original = webTrace(44, 2.0);
    // Give the timestamps sub-microsecond components so nanosecond
    // files genuinely carry more precision than microsecond ones.
    for (size_t i = 0; i < original.size(); ++i)
        original[i].timestampNs += i % 997;

    auto native = trace::writePcap(original, /*nanos=*/true);
    auto swapped = byteSwapPcap(native);

    for (const auto &file : {native, swapped}) {
        trace::Trace back = trace::readPcap(file);
        ASSERT_EQ(back.size(), original.size());
        for (size_t i = 0; i < back.size(); ++i)
            EXPECT_EQ(back[i].timestampNs, original[i].timestampNs);
    }
}

TEST(TraceIo, PcapRejectsOutOfRangeFraction)
{
    trace::Trace one;
    trace::PacketRecord pkt;
    pkt.timestampNs = 5000000000ull;
    one.add(pkt);

    auto patchFrac = [](std::vector<uint8_t> &file, uint32_t v) {
        // Fraction field of the first record header, little-endian.
        file[28] = static_cast<uint8_t>(v);
        file[29] = static_cast<uint8_t>(v >> 8);
        file[30] = static_cast<uint8_t>(v >> 16);
        file[31] = static_cast<uint8_t>(v >> 24);
    };

    // Microsecond file: patch the fraction to 1e6 (invalid).
    auto usecFile = trace::writePcap(one, /*nanos=*/false);
    patchFrac(usecFile, 1000000);
    EXPECT_THROW(trace::readPcap(usecFile), util::Error);

    // Nanosecond file: 1e6 is fine, 1e9 is not — the two magics
    // must be validated against different bounds.
    auto nsecFile = trace::writePcap(one, /*nanos=*/true);
    patchFrac(nsecFile, 1000000);
    EXPECT_NO_THROW(trace::readPcap(nsecFile));
    patchFrac(nsecFile, 1000000000);
    EXPECT_THROW(trace::readPcap(nsecFile), util::Error);
}

// ---- pcapng ---------------------------------------------------------------

TEST(TraceIo, PcapngRoundTripPreservesNanoseconds)
{
    trace::Trace original = webTrace(45, 3.0);
    for (size_t i = 0; i < original.size(); ++i)
        original[i].timestampNs += i % 997;

    auto bytes = trace::writePcapng(original);
    trace::Trace back = trace::readPcapng(bytes);
    ASSERT_EQ(back.size(), original.size());
    EXPECT_TRUE(sameHeaders(original, back));
    for (size_t i = 0; i < back.size(); ++i)
        EXPECT_EQ(back[i].timestampNs, original[i].timestampNs);
}

namespace {

void
putU16le(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32le(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

std::vector<uint8_t>
pcapngShb()
{
    std::vector<uint8_t> out;
    putU32le(out, 0x0a0d0d0au);
    putU32le(out, 28);
    putU32le(out, 0x1a2b3c4du);
    putU16le(out, 1);
    putU16le(out, 0);
    putU32le(out, 0xffffffffu);
    putU32le(out, 0xffffffffu);
    putU32le(out, 28);
    return out;
}

/** IDB with an explicit if_tsresol option. */
std::vector<uint8_t>
pcapngIdb(uint16_t linkType, uint8_t tsresol)
{
    std::vector<uint8_t> out;
    putU32le(out, 1);
    putU32le(out, 32);
    putU16le(out, linkType);
    putU16le(out, 0);
    putU32le(out, 65535);
    putU16le(out, 9);  // if_tsresol
    putU16le(out, 1);
    out.push_back(tsresol);
    out.push_back(0); out.push_back(0); out.push_back(0);
    putU16le(out, 0);  // opt_endofopt
    putU16le(out, 0);
    putU32le(out, 32);
    return out;
}

std::vector<uint8_t>
pcapngEpb(uint32_t ifaceId, uint64_t ticks,
          const trace::PacketRecord &pkt)
{
    std::vector<uint8_t> body;
    trace::appendIpv4TcpHeader(pkt, body);
    std::vector<uint8_t> out;
    putU32le(out, 6);
    uint32_t total = static_cast<uint32_t>(32 + body.size());
    putU32le(out, total);
    putU32le(out, ifaceId);
    putU32le(out, static_cast<uint32_t>(ticks >> 32));
    putU32le(out, static_cast<uint32_t>(ticks));
    putU32le(out, static_cast<uint32_t>(body.size()));
    putU32le(out, pkt.ipTotalLength());
    out.insert(out.end(), body.begin(), body.end());
    putU32le(out, total);
    return out;
}

} // namespace

TEST(TraceIo, PcapngMultipleInterfaceBlocks)
{
    // Two interfaces with different clock resolutions: microsecond
    // (power of 10) and 1/1024 s (power of 2). Packets reference
    // both; timestamps must come back on a common ns timeline.
    trace::PacketRecord pkt;
    pkt.srcIp = 0x0a000001;
    pkt.dstIp = 0x0a000002;
    pkt.srcPort = 1234;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Syn;

    std::vector<uint8_t> file = pcapngShb();
    auto idb0 = pcapngIdb(101, 6);           // µs resolution
    auto idb1 = pcapngIdb(101, 0x80 | 10);   // 2^-10 s resolution
    file.insert(file.end(), idb0.begin(), idb0.end());
    file.insert(file.end(), idb1.begin(), idb1.end());

    auto epb0 = pcapngEpb(0, 2500000, pkt);  // 2.5 s in µs ticks
    auto epb1 = pcapngEpb(1, 3 * 1024 + 512, pkt);  // 3.5 s
    file.insert(file.end(), epb0.begin(), epb0.end());
    file.insert(file.end(), epb1.begin(), epb1.end());

    trace::Trace back = trace::readPcapng(file);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].timestampNs, 2500000000ull);
    EXPECT_EQ(back[1].timestampNs, 3500000000ull);
    EXPECT_EQ(back[0].srcPort, 1234);
    EXPECT_EQ(back[1].dstPort, 80);
}

TEST(TraceIo, PcapngSecondSectionResetsInterfaces)
{
    trace::PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;

    std::vector<uint8_t> file = pcapngShb();
    auto idb = pcapngIdb(101, 6);
    file.insert(file.end(), idb.begin(), idb.end());
    auto epb = pcapngEpb(0, 1000000, pkt);
    file.insert(file.end(), epb.begin(), epb.end());

    // Second section: its packet may not reference the first
    // section's interface until a new IDB appears.
    auto shb = pcapngShb();
    file.insert(file.end(), shb.begin(), shb.end());
    auto epbBad = pcapngEpb(0, 2000000, pkt);
    file.insert(file.end(), epbBad.begin(), epbBad.end());

    EXPECT_THROW(trace::readPcapng(file), util::Error);
}

TEST(TraceIo, PcapngRejectsSimplePacketBlock)
{
    std::vector<uint8_t> file = pcapngShb();
    auto idb = pcapngIdb(101, 6);
    file.insert(file.end(), idb.begin(), idb.end());
    // SPB: type 3, original length only, no timestamp.
    putU32le(file, 3);
    putU32le(file, 16);
    putU32le(file, 40);
    putU32le(file, 16);
    EXPECT_THROW(trace::readPcapng(file), util::Error);
}

TEST(TraceIo, PcapngSkipsUnknownBlocks)
{
    trace::PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;

    std::vector<uint8_t> file = pcapngShb();
    auto idb = pcapngIdb(101, 6);
    file.insert(file.end(), idb.begin(), idb.end());
    // An Interface Statistics Block (type 5) must be skipped.
    putU32le(file, 5);
    putU32le(file, 20);
    putU32le(file, 0);
    putU32le(file, 0);
    putU32le(file, 20);
    auto epb = pcapngEpb(0, 7, pkt);
    file.insert(file.end(), epb.begin(), epb.end());

    trace::Trace back = trace::readPcapng(file);
    ASSERT_EQ(back.size(), 1u);
}

TEST(TraceIo, PcapngTruncatedHeaderRejected)
{
    std::vector<uint8_t> file = pcapngShb();
    file.resize(10);  // mid-byte-order-magic
    EXPECT_THROW(trace::readPcapng(file), util::Error);
}

// ---- gzip byte source -----------------------------------------------------

TEST(TraceIo, GzipSourceStreamsChunkwise)
{
    // Compressible but non-trivial payload, drained in odd-sized
    // chunks through the resumable inflate.
    std::vector<uint8_t> payload;
    std::mt19937 rng(7);
    for (int i = 0; i < 300000; ++i)
        payload.push_back(static_cast<uint8_t>(rng() % 17));
    auto gz = codec::deflate::gzipCompress(payload);

    codec::deflate::GzipInflateSource src(
        std::make_unique<util::BufferByteSource>(gz));
    std::vector<uint8_t> restored;
    uint8_t buf[777];
    size_t n;
    while ((n = src.read(buf, sizeof(buf))) > 0)
        restored.insert(restored.end(), buf, buf + n);
    EXPECT_EQ(restored, payload);
}

TEST(TraceIo, GzipSourceHandlesConcatenatedMembers)
{
    std::vector<uint8_t> a(50000, 'a'), b(60000, 'b');
    auto gz = codec::deflate::gzipCompress(a);
    auto gz2 = codec::deflate::gzipCompress(b);
    gz.insert(gz.end(), gz2.begin(), gz2.end());

    codec::deflate::GzipInflateSource src(
        std::make_unique<util::BufferByteSource>(gz));
    std::vector<uint8_t> restored;
    uint8_t buf[4096];
    size_t n;
    while ((n = src.read(buf, sizeof(buf))) > 0)
        restored.insert(restored.end(), buf, buf + n);

    std::vector<uint8_t> expect(a);
    expect.insert(expect.end(), b.begin(), b.end());
    EXPECT_EQ(restored, expect);
}

TEST(TraceIo, GzipSourceDetectsCorruption)
{
    std::vector<uint8_t> payload(20000, 'x');
    auto gz = codec::deflate::gzipCompress(payload);
    gz[gz.size() - 6] ^= 0xff;  // flip a CRC byte

    codec::deflate::GzipInflateSource src(
        std::make_unique<util::BufferByteSource>(gz));
    uint8_t buf[4096];
    EXPECT_THROW(
        {
            while (src.read(buf, sizeof(buf)) > 0) {
            }
        },
        util::Error);
}

// ---- format auto-detection ------------------------------------------------

TEST(TraceIo, DetectsEveryFormat)
{
    trace::Trace t = webTrace(46, 1.0);

    auto tsh = trace::writeTsh(t);
    auto det = trace::detectTraceFormat(tsh);
    EXPECT_EQ(det.format, trace::TraceFormat::Tsh);
    EXPECT_FALSE(det.gzip);

    auto pcap = trace::writePcap(t);
    det = trace::detectTraceFormat(pcap);
    EXPECT_EQ(det.format, trace::TraceFormat::Pcap);

    auto pcapNs = trace::writePcap(t, /*nanos=*/true);
    det = trace::detectTraceFormat(pcapNs);
    EXPECT_EQ(det.format, trace::TraceFormat::Pcap);

    auto swapped = byteSwapPcap(pcap);
    det = trace::detectTraceFormat(swapped);
    EXPECT_EQ(det.format, trace::TraceFormat::Pcap);

    auto pcapng = trace::writePcapng(t);
    det = trace::detectTraceFormat(pcapng);
    EXPECT_EQ(det.format, trace::TraceFormat::Pcapng);

    auto gz = codec::deflate::gzipCompress(tsh);
    det = trace::detectTraceFormat(gz);
    EXPECT_TRUE(det.gzip);
}

TEST(TraceIo, DetectionRejectsGarbageAndTruncation)
{
    std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00,
                                    0x00, 0x00, 0x00, 0x00, 0x00};
    EXPECT_THROW(trace::detectTraceFormat(garbage), util::Error);

    std::vector<uint8_t> tiny = {0x45};
    EXPECT_THROW(trace::detectTraceFormat(tiny), util::Error);

    std::vector<uint8_t> empty;
    EXPECT_THROW(trace::detectTraceFormat(empty), util::Error);
}

TEST(TraceIo, OpenTraceSourceAutoDetects)
{
    trace::Trace original = webTrace(47, 2.0);

    struct Case
    {
        const char *name;
        std::vector<uint8_t> bytes;
        trace::TraceFormat format;
        bool gzip;
    };
    std::vector<Case> cases;
    cases.push_back({"auto.tsh", trace::writeTsh(original),
                     trace::TraceFormat::Tsh, false});
    cases.push_back({"auto.pcap", trace::writePcap(original),
                     trace::TraceFormat::Pcap, false});
    cases.push_back({"auto.pcapng", trace::writePcapng(original),
                     trace::TraceFormat::Pcapng, false});
    cases.push_back(
        {"auto.tsh.gz",
         codec::deflate::gzipCompress(trace::writeTsh(original)),
         trace::TraceFormat::Tsh, true});
    cases.push_back(
        {"auto.pcapng.gz",
         codec::deflate::gzipCompress(trace::writePcapng(original)),
         trace::TraceFormat::Pcapng, true});

    for (const auto &c : cases) {
        std::string path = tempPath(c.name);
        writeBytes(path, c.bytes);
        trace::DetectedFormat detected;
        auto src = trace::openTraceSource(path, {}, &detected);
        EXPECT_EQ(detected.format, c.format) << c.name;
        EXPECT_EQ(detected.gzip, c.gzip) << c.name;
        trace::Trace back = trace::readAllPackets(*src);
        EXPECT_TRUE(sameHeaders(original, back)) << c.name;
        std::remove(path.c_str());
    }
}

TEST(TraceIo, TruncatedPcapHeaderRejectedOnOpen)
{
    std::string path = tempPath("trunc.pcap");
    auto bytes = trace::writePcap(webTrace(48, 0.5));
    bytes.resize(20);  // magic survives, global header does not
    writeBytes(path, bytes);
    EXPECT_THROW(trace::openTraceSource(path), util::Error);
    std::remove(path.c_str());
}

// ---- FCC2 byte-identity across input formats ------------------------------

TEST(TraceIo, CompressionIsByteIdenticalAcrossFormats)
{
    // The acceptance bar of the I/O subsystem: a gzip'd pcapng input
    // compresses to the exact same FCC2 bytes as the TSH path, and
    // both round-trip to identical reconstructions.
    trace::Trace original = webTrace(49, 5.0);

    std::string tshPath = tempPath("ident.tsh");
    std::string ngGzPath = tempPath("ident.pcapng.gz");
    trace::writeTshFile(original, tshPath);
    writeBytes(ngGzPath, codec::deflate::gzipCompress(
                             trace::writePcapng(original)));

    std::string fccA = tempPath("ident_a.fcc");
    std::string fccB = tempPath("ident_b.fcc");
    auto statsA =
        codec::fcc::compressTraceFile(tshPath, fccA, {}, kTsh);
    auto statsB = codec::fcc::compressTraceFile(ngGzPath, fccB);
    EXPECT_EQ(statsA.packets, statsB.packets);
    EXPECT_EQ(statsA.flows, statsB.flows);
    EXPECT_EQ(readBytes(fccA), readBytes(fccB));

    // Decompressing each to TSH gives identical bytes too.
    std::string outA = tempPath("ident_a_out.tsh");
    std::string outB = tempPath("ident_b_out.tsh");
    codec::fcc::decompressTraceFile(fccA, outA, {}, kTsh);
    codec::fcc::decompressTraceFile(fccB, outB);
    EXPECT_EQ(readBytes(outA), readBytes(outB));

    for (const auto &p : {tshPath, ngGzPath, fccA, fccB, outA, outB})
        std::remove(p.c_str());
}

TEST(TraceIo, CorruptFccInputDoesNotClobberOutputFile)
{
    // The output path must not be opened (truncated) until the FCC
    // container has decoded: failing on corrupt input has to leave
    // an existing output file untouched.
    std::string fccPath = tempPath("corrupt.fcc");
    std::string outPath = tempPath("precious.tsh");
    writeBytes(fccPath, {'F', 'C', 'C', '2', 0xde, 0xad});
    const std::vector<uint8_t> precious = {1, 2, 3, 4, 5};
    writeBytes(outPath, precious);

    EXPECT_THROW(codec::fcc::decompressTraceFile(fccPath, outPath),
                 util::Error);
    EXPECT_EQ(readBytes(outPath), precious);

    std::remove(fccPath.c_str());
    std::remove(outPath.c_str());
}

TEST(TraceIo, EmptyFileSourcesBehave)
{
    // Zero-byte files must neither crash (null mmap) nor parse.
    std::string path = tempPath("empty.bin");
    writeBytes(path, {});

    auto bytes = util::openByteSource(path);
    uint8_t buf[16];
    EXPECT_EQ(bytes->read(buf, sizeof(buf)), 0u);

    // Explicit TSH spec: an empty file is a valid 0-record trace.
    trace::TraceFormatSpec tshSpec;
    tshSpec.autoDetect = false;
    tshSpec.format = trace::TraceFormat::Tsh;
    auto src = trace::openTraceSource(path, tshSpec);
    std::vector<trace::PacketRecord> batch(4);
    EXPECT_EQ(src->read(batch), 0u);

    // Auto-detection has nothing to go on and must say so.
    EXPECT_THROW(trace::openTraceSource(path), util::Error);
    std::remove(path.c_str());
}

TEST(TraceIo, DecompressToPcapngRoundTrips)
{
    trace::Trace original = webTrace(50, 4.0);
    std::string tshPath = tempPath("rt.tsh");
    std::string fccPath = tempPath("rt.fcc");
    std::string ngPath = tempPath("rt_out.pcapng");
    trace::writeTshFile(original, tshPath);

    codec::fcc::compressTraceFile(tshPath, fccPath, {}, kTsh);
    auto stats = codec::fcc::decompressTraceFile(fccPath, ngPath);
    EXPECT_EQ(stats.packets, original.size());

    trace::Trace back = trace::readPcapngFile(ngPath);
    EXPECT_EQ(back.size(), original.size());
    EXPECT_TRUE(back.isTimeOrdered());

    for (const auto &p : {tshPath, fccPath, ngPath})
        std::remove(p.c_str());
}

// ---- bounded memory on a multi-GB input -----------------------------------

TEST(TraceIo, BoundedMemoryOnMultiGigabyteInput)
{
    // A multi-GB logical TSH stream synthesized on the fly: if any
    // layer of the source stack materialized the trace, peak RSS
    // would jump by gigabytes. FCC_IO_BIG_RECORDS overrides the
    // record count (e.g. for quick local runs).
    uint64_t records = underSanitizer()
        ? 8'000'000            // 350 MB: instrumented runs are ~10x
                               // slower and shadow skews RSS anyway
        : 50'000'000;          // 2.2 GB of TSH
    if (const char *env = std::getenv("FCC_IO_BIG_RECORDS"))
        records = std::strtoull(env, nullptr, 10);
    const uint64_t logicalBytes = records * trace::tshRecordBytes;

    // One template record, timestamp patched per copy.
    trace::Trace one;
    trace::PacketRecord pkt;
    pkt.srcIp = 0x0a000001;
    pkt.dstIp = 0x0a000002;
    pkt.srcPort = 40000;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Ack;
    one.add(pkt);
    const std::vector<uint8_t> tmpl = trace::writeTsh(one);

    uint64_t emitted = 0;  // records fully or partially emitted
    size_t offset = 0;     // byte offset inside the current record
    auto generator = [&](uint8_t *out, size_t maxLen) -> size_t {
        size_t produced = 0;
        while (produced < maxLen && (emitted < records ||
                                     offset != 0)) {
            if (offset == 0 && emitted == records)
                break;
            size_t take = std::min(maxLen - produced,
                                   tmpl.size() - offset);
            std::memcpy(out + produced, tmpl.data() + offset, take);
            // Patch the big-endian seconds field when it is within
            // the copied range (offset 0..3 of the record).
            uint32_t sec = static_cast<uint32_t>(emitted / 1000);
            for (size_t b = 0; b < 4; ++b) {
                if (offset <= b && b < offset + take)
                    out[produced + (b - offset)] = static_cast<
                        uint8_t>(sec >> (8 * (3 - b)));
            }
            produced += take;
            offset += take;
            if (offset == tmpl.size()) {
                offset = 0;
                ++emitted;
            }
        }
        return produced;
    };

    uint64_t rssBefore = peakRssBytes();
    if (rssBefore == 0)
        GTEST_SKIP() << "kernel exposes no VmHWM in "
                        "/proc/self/status; cannot measure peak RSS";
    trace::TshSource src(
        std::make_unique<util::GeneratorByteSource>(generator));
    uint64_t packets = 0;
    std::vector<trace::PacketRecord> batch(4096);
    size_t n;
    while ((n = src.read(batch)) > 0)
        packets += n;
    uint64_t rssAfter = peakRssBytes();

    EXPECT_EQ(packets, records);
    EXPECT_EQ(src.bytesConsumed(), logicalBytes);

    // The stream was multi-GB; the reader may keep only batches.
    const uint64_t bound =
        underSanitizer() ? 1024ull << 20 : 256ull << 20;
    EXPECT_LT(rssAfter - rssBefore, bound)
        << "streaming read materialized a " << logicalBytes
        << "-byte input";
}

TEST(TraceIo, MmapSourceBoundsResidencyOnLargeFile)
{
    if (!util::MmapByteSource::supported())
        GTEST_SKIP() << "no mmap on this platform";
    if (underSanitizer())
        GTEST_SKIP() << "sanitizer shadow memory defeats the "
                        "VmHWM bound";

    // 320 MB on-disk file read through the mmap source: the
    // consumed-prefix release must keep the RSS delta well below
    // the file size.
    const size_t mb = 320;
    std::string path = tempPath("big_mmap.tsh");
    {
        trace::Trace chunk;
        trace::PacketRecord pkt;
        pkt.srcIp = 1;
        pkt.dstIp = 2;
        for (int i = 0; i < 100000; ++i) {
            pkt.timestampNs = static_cast<uint64_t>(i) * 1000;
            chunk.add(pkt);
        }
        auto bytes = trace::writeTsh(chunk);
        util::FileByteSink out(path);
        size_t written = 0;
        while (written < mb << 20) {
            out.write(bytes);
            written += bytes.size();
        }
        out.close();
    }

    uint64_t rssBefore = peakRssBytes();
    trace::TshSource src(
        std::make_unique<util::MmapByteSource>(path));
    std::vector<trace::PacketRecord> batch(4096);
    uint64_t packets = 0;
    size_t n;
    while ((n = src.read(batch)) > 0)
        packets += n;
    uint64_t rssAfter = peakRssBytes();

    EXPECT_GT(packets, (mb << 20) / trace::tshRecordBytes / 2);
    EXPECT_LT(rssAfter - rssBefore, 200ull << 20);
    std::remove(path.c_str());
}
