/**
 * @file
 * Differential fuzz suite for the scalar/accelerated dispatch pairs
 * (util/simd.hpp): every SWAR or interleaved hot path must produce
 * bytes identical to its scalar reference — varint batches, the
 * zigzag-delta column codec, the lane-split range coder, slice-by-8
 * CRC-32 and batched Bloom build/probe — across random, boundary
 * (u64-max, maximum-length varints) and adversarial-scenario inputs,
 * including malformed streams (both paths must reject identically)
 * and the full compressor at 1/2/4/8 worker threads.
 *
 * Explicit Dispatch::Scalar / Dispatch::Accel bypass the
 * FCC_FORCE_SCALAR environment override, so the comparisons below
 * exercise both implementations even in the CI scalar cell.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codec/backend/range_coder.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "codec/field/field_codec.hpp"
#include "trace/scenario_gen.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
namespace field = fcc::codec::field;
namespace backend = fcc::codec::backend;

namespace {

constexpr util::Dispatch kScalar = util::Dispatch::Scalar;
constexpr util::Dispatch kAccel = util::Dispatch::Accel;

/** A value whose varint length is drawn uniformly from 1..10. */
uint64_t
randomVarintValue(util::Rng &rng)
{
    unsigned bits = static_cast<unsigned>(rng.uniformInt(0, 63));
    uint64_t v = rng.next();
    return bits == 63 ? v : v & ((uint64_t{1} << (bits + 1)) - 1);
}

/** Reference varint encoding through the serial ByteWriter. */
std::vector<uint8_t>
referenceVarint(const std::vector<uint64_t> &values)
{
    util::ByteWriter w;
    for (uint64_t v : values)
        w.varint(v);
    return w.take();
}

/** What decoding @p data as @p count varints does, per dispatch. */
std::string
decodeOutcome(const std::vector<uint8_t> &data, size_t count,
              util::Dispatch d)
{
    std::vector<uint64_t> out(count);
    try {
        size_t used = util::varintDecodeBatch(data.data(),
                                              data.size(),
                                              out.data(), count, d);
        std::string s = "ok:" + std::to_string(used);
        for (uint64_t v : out)
            s += "," + std::to_string(v);
        return s;
    } catch (const util::Error &e) {
        return std::string("error:") + e.what();
    }
}

void
expectBatchIdentity(const std::vector<uint64_t> &values)
{
    std::vector<uint8_t> scalar;
    std::vector<uint8_t> accel;
    util::varintEncodeBatch(values, scalar, kScalar);
    util::varintEncodeBatch(values, accel, kAccel);
    ASSERT_EQ(scalar, accel);
    EXPECT_EQ(scalar, referenceVarint(values));
    EXPECT_EQ(scalar.size(), util::varintLenSum(values));

    std::vector<uint64_t> outScalar(values.size());
    std::vector<uint64_t> outAccel(values.size());
    size_t usedScalar = util::varintDecodeBatch(
        scalar.data(), scalar.size(), outScalar.data(),
        values.size(), kScalar);
    size_t usedAccel = util::varintDecodeBatch(
        scalar.data(), scalar.size(), outAccel.data(), values.size(),
        kAccel);
    EXPECT_EQ(usedScalar, scalar.size());
    EXPECT_EQ(usedAccel, scalar.size());
    EXPECT_EQ(outScalar, values);
    EXPECT_EQ(outAccel, values);
}

} // namespace

// ---------------------------------------------------------------
// Varint batches
// ---------------------------------------------------------------

TEST(SimdVarint, BoundaryValues)
{
    expectBatchIdentity({});
    expectBatchIdentity({0});
    expectBatchIdentity({0x7f});
    expectBatchIdentity({0x80});
    expectBatchIdentity({0x3fff, 0x4000});
    expectBatchIdentity({UINT64_MAX});
    expectBatchIdentity({uint64_t{1} << 63});
    // Long runs of single-byte values hit the 8-at-a-time SWAR
    // paths; the +3 tail exercises the cleanup loop.
    std::vector<uint64_t> small(67, 0x42);
    expectBatchIdentity(small);
    // Max-length varints back to back, and mixed with tiny ones at
    // every alignment within the 8-value window.
    std::vector<uint64_t> mixed;
    for (size_t i = 0; i < 64; ++i)
        mixed.push_back(i % 9 == 0 ? UINT64_MAX : i % 7);
    expectBatchIdentity(mixed);
}

TEST(SimdVarint, RandomFuzz)
{
    util::Rng rng(0x51D0FEED);
    for (int round = 0; round < 50; ++round) {
        size_t n = static_cast<size_t>(rng.uniformInt(0, 300));
        std::vector<uint64_t> values;
        values.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            // Mostly small (the SWAR sweet spot), sometimes huge.
            if (rng.uniformInt(0, 3) == 0)
                values.push_back(randomVarintValue(rng));
            else
                values.push_back(rng.uniformInt(0, 0x7f));
        }
        expectBatchIdentity(values);
    }
}

TEST(SimdVarint, MalformedRejectionParity)
{
    // Both dispatches must agree on accept/reject AND on the error
    // text and decoded values — including reads that end right at
    // the buffer edge, where the SWAR fast path must bail out.
    std::vector<std::pair<std::vector<uint8_t>, size_t>> cases;
    cases.push_back({{}, 1});              // empty, want one value
    cases.push_back({{0x80}, 1});          // truncated continuation
    cases.push_back({{0xff, 0xff}, 1});    // truncated longer
    // 10 continuation bytes and more: "varint too long".
    cases.push_back(
        {{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
          0x80, 0x01},
         1});
    // 10-byte varint whose top byte overflows 64 bits.
    cases.push_back(
        {{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
          0x02},
         1});
    // Exactly u64-max: valid, must decode on both paths.
    cases.push_back(
        {{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
          0x01},
         1});
    // 7 single-byte values then a truncated multi-byte one: the
    // 8-wide fast path sees no continuation bit only for the first
    // window, then the tail must fail identically.
    {
        std::vector<uint8_t> tail(7, 0x01);
        tail.push_back(0x80);
        cases.push_back({tail, 8});
    }
    // Trailing garbage after the requested count is NOT an error for
    // the batch API (it reports bytes consumed); parity still holds.
    cases.push_back({{0x05, 0x06, 0x07}, 2});

    util::Rng rng(0xBADC0DE5);
    for (int round = 0; round < 40; ++round) {
        std::vector<uint8_t> junk(
            static_cast<size_t>(rng.uniformInt(0, 40)));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.uniformInt(0, 255));
        cases.push_back(
            {junk, static_cast<size_t>(rng.uniformInt(1, 12))});
    }

    for (const auto &[data, count] : cases)
        EXPECT_EQ(decodeOutcome(data, count, kScalar),
                  decodeOutcome(data, count, kAccel))
            << "input size " << data.size() << " count " << count;
}

// ---------------------------------------------------------------
// Field codecs (zigzag-delta, plain, dict through the batch paths)
// ---------------------------------------------------------------

TEST(SimdFieldCodec, DispatchIdentity)
{
    util::Rng rng(0x2005);
    const field::FieldCodec codecs[] = {field::FieldCodec::Plain,
                                        field::FieldCodec::ZigzagDelta,
                                        field::FieldCodec::Dict};
    for (int round = 0; round < 30; ++round) {
        size_t n = static_cast<size_t>(rng.uniformInt(0, 500));
        std::vector<uint64_t> values;
        values.reserve(n);
        uint64_t walk = rng.next();
        for (size_t i = 0; i < n; ++i) {
            // A random walk (zigzag's home turf) with occasional
            // wild jumps to u64 extremes.
            switch (rng.uniformInt(0, 9)) {
              case 0: walk = rng.next(); break;
              case 1: walk = UINT64_MAX; break;
              case 2: walk = 0; break;
              default: walk += rng.uniformInt(0, 1000) - 500; break;
            }
            values.push_back(walk);
        }
        for (field::FieldCodec fc : codecs) {
            auto scalar = field::encodeColumn(values, fc, kScalar);
            auto accel = field::encodeColumn(values, fc, kAccel);
            ASSERT_EQ(scalar, accel) << field::fieldCodecName(fc);
            EXPECT_EQ(field::decodeColumn(scalar, fc, values.size(),
                                          kScalar),
                      values);
            EXPECT_EQ(field::decodeColumn(scalar, fc, values.size(),
                                          kAccel),
                      values);
        }
    }
}

TEST(SimdFieldCodec, TrailingBytesRejectedBothPaths)
{
    std::vector<uint64_t> values{1, 2, 3};
    auto encoded =
        field::encodeColumn(values, field::FieldCodec::Plain);
    encoded.push_back(0x00);
    EXPECT_THROW(field::decodeColumn(encoded,
                                     field::FieldCodec::Plain,
                                     values.size(), kScalar),
                 util::Error);
    EXPECT_THROW(field::decodeColumn(encoded,
                                     field::FieldCodec::Plain,
                                     values.size(), kAccel),
                 util::Error);
}

// ---------------------------------------------------------------
// Lane-split range coder
// ---------------------------------------------------------------

TEST(SimdRangeLanes, RoundTripAllSizes)
{
    util::Rng rng(0xA1B2C3);
    // Sizes straddle every lane-count threshold of
    // rangeLaneCount(): 1 lane (< 4 KiB), 4 lanes, and the 8-lane
    // regime, plus the remainder-lane edge cases.
    const size_t sizes[] = {0,    1,    7,      4095,   4096,
                            4097, 8191, 100000, 1048577};
    for (size_t size : sizes) {
        std::vector<uint8_t> data(size);
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.uniformInt(0, 255));

        auto scalar = backend::rangeCompressLanes(data, kScalar);
        auto accel = backend::rangeCompressLanes(data, kAccel);
        ASSERT_EQ(scalar, accel) << "size " << size;

        EXPECT_EQ(backend::rangeDecompressLanes(scalar, size,
                                                kScalar),
                  data)
            << "size " << size;
        EXPECT_EQ(backend::rangeDecompressLanes(scalar, size,
                                                kAccel),
                  data)
            << "size " << size;
    }
}

TEST(SimdRangeLanes, SingleLanePayloadMatchesSerialCoder)
{
    // Below the 4 KiB threshold the lane payload is exactly one
    // serial range-coder stream behind the 1-byte header.
    std::vector<uint8_t> data(1000, 0x5a);
    auto lanes = backend::rangeCompressLanes(data);
    auto serial = backend::rangeCompress(data);
    ASSERT_GE(lanes.size(), 1u);
    EXPECT_EQ(lanes[0], 1);
    EXPECT_EQ(std::vector<uint8_t>(lanes.begin() + 1, lanes.end()),
              serial);
}

TEST(SimdRangeLanes, MalformedPayloadsRejected)
{
    std::vector<uint8_t> data(8192, 0x11);
    auto packed = backend::rangeCompressLanes(data);
    for (util::Dispatch d : {kScalar, kAccel}) {
        // Bad lane counts.
        for (uint8_t laneByte : {uint8_t{0}, uint8_t{9},
                                 uint8_t{200}}) {
            auto bad = packed;
            bad[0] = laneByte;
            EXPECT_THROW(backend::rangeDecompressLanes(
                             bad, data.size(), d),
                         util::Error);
        }
        // Truncated header / lane-length table.
        EXPECT_THROW(backend::rangeDecompressLanes({}, data.size(),
                                                   d),
                     util::Error);
        std::vector<uint8_t> onlyCount{4};
        EXPECT_THROW(backend::rangeDecompressLanes(
                         onlyCount, data.size(), d),
                     util::Error);
        // Lane length pointing past the payload.
        {
            util::ByteWriter w;
            w.u8(2);
            w.varint(1000);  // lane 0 claims 1000 bytes...
            w.u8(0x00);      // ...but only one byte follows
            auto bad = w.take();
            EXPECT_THROW(backend::rangeDecompressLanes(
                             bad, data.size(), d),
                         util::Error);
        }
        // Non-empty payload for an empty stream.
        std::vector<uint8_t> stray{1, 2, 3};
        EXPECT_THROW(backend::rangeDecompressLanes(stray, 0, d),
                     util::Error);
    }
}

// ---------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------

TEST(SimdCrc32, KnownVectorBothPaths)
{
    const char *check = "123456789";
    std::span<const uint8_t> bytes(
        reinterpret_cast<const uint8_t *>(check), 9);
    EXPECT_EQ(util::Crc32::of(bytes, kScalar), 0xCBF43926u);
    EXPECT_EQ(util::Crc32::of(bytes, kAccel), 0xCBF43926u);
}

TEST(SimdCrc32, ScalarSlice8IdentityAndChunking)
{
    util::Rng rng(0xC4C32);
    std::vector<uint8_t> buf(100000);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.uniformInt(0, 255));

    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{9}, size_t{63}, size_t{8191},
                       buf.size()}) {
        // Unaligned starts stress the slice-by-8 word loads.
        for (size_t off : {size_t{0}, size_t{1}, size_t{5}}) {
            if (off + len > buf.size())
                continue;
            std::span<const uint8_t> s(buf.data() + off, len);
            uint32_t scalar = util::Crc32::of(s, kScalar);
            uint32_t accel = util::Crc32::of(s, kAccel);
            EXPECT_EQ(scalar, accel)
                << "len " << len << " off " << off;

            // Feeding the same bytes in ragged chunks must not
            // change the digest on either path.
            util::Crc32 chunked(kAccel);
            size_t pos = 0;
            uint64_t step = 1;
            while (pos < len) {
                size_t take = std::min<size_t>(
                    len - pos, (step = step * 7 + 3) % 97 + 1);
                chunked.update(s.subspan(pos, take));
                pos += take;
            }
            EXPECT_EQ(chunked.value(), scalar)
                << "len " << len << " off " << off;
        }
    }
}

// ---------------------------------------------------------------
// Bloom filter build/probe
// ---------------------------------------------------------------

TEST(SimdBloom, BuildIdentityAndNoFalseNegatives)
{
    util::Rng rng(0xB100);
    for (int round = 0; round < 20; ++round) {
        size_t n = static_cast<size_t>(rng.uniformInt(0, 400));
        std::vector<uint32_t> servers;
        servers.reserve(n);
        for (size_t i = 0; i < n; ++i)
            servers.push_back(
                static_cast<uint32_t>(rng.uniformInt(0, UINT32_MAX)));

        uint32_t bits = 64;
        while (bits < servers.size() * fccc::bloomBitsPerServer)
            bits *= 2;

        auto scalar = fccc::bloomBuild(servers, bits, kScalar);
        auto accel = fccc::bloomBuild(servers, bits, kAccel);
        ASSERT_EQ(scalar, accel) << "n " << n;

        fccc::ChunkSummary summary;
        summary.bloomBits = bits;
        summary.bloom = scalar;
        for (uint32_t ip : servers) {
            // No false negatives, and the precomputed-fingerprint
            // probe must agree with the hash-on-the-spot one.
            EXPECT_TRUE(summary.mayContainServer(ip));
            EXPECT_TRUE(
                summary.mayContain(fccc::serverFingerprint(ip)));
        }
        for (int probe = 0; probe < 100; ++probe) {
            uint32_t ip =
                static_cast<uint32_t>(rng.uniformInt(0, UINT32_MAX));
            EXPECT_EQ(summary.mayContainServer(ip),
                      summary.mayContain(
                          fccc::serverFingerprint(ip)));
        }
    }
}

// ---------------------------------------------------------------
// Whole-compressor byte identity across worker-thread counts
// ---------------------------------------------------------------

TEST(SimdThreads, RangeLanesArchiveBytesThreadInvariant)
{
    // The lane count derives only from the column size, never from
    // scheduling, so the full FCC3 archive must be byte-identical at
    // any thread count — on adversarial inputs, not just web traffic.
    const trace::ScenarioKind kinds[] = {
        trace::ScenarioKind::SynFlood,
        trace::ScenarioKind::Reordering,
    };
    for (trace::ScenarioKind kind : kinds) {
        SCOPED_TRACE(trace::scenarioName(kind));
        trace::ScenarioConfig cfg =
            trace::scenarioDefaults(kind, 0x515D);
        cfg.durationSec = 3.0;
        cfg.flows = 300;
        trace::ScenarioGenerator gen(cfg);
        trace::Trace trace = gen.generate();

        std::vector<uint8_t> reference;
        for (uint32_t threads : {1u, 2u, 4u, 8u}) {
            fccc::FccConfig fcfg;
            fcfg.container = fccc::ContainerFormat::Fcc3;
            fcfg.backend = backend::EntropyBackend::RangeLanes;
            fcfg.chunkRecords = 256;
            fcfg.threads = threads;
            fccc::FccTraceCompressor codec(fcfg);
            auto compressed = codec.compress(trace);
            if (threads == 1) {
                reference = compressed;
                // The archive must survive its own decompressor.
                auto out = codec.decompress(compressed);
                EXPECT_GT(out.size(), 0u);
            } else {
                EXPECT_EQ(compressed, reference)
                    << "threads=" << threads;
            }
        }
    }
}

// ---------------------------------------------------------------
// Readahead byte source
// ---------------------------------------------------------------

TEST(SimdReadahead, MatchesWholeFileRead)
{
    if (!util::ReadaheadByteSource::supported())
        GTEST_SKIP() << "posix_fadvise unavailable on this platform";

    const std::string path =
        fcc::test::tempPath("simd_readahead.bin");
    util::Rng rng(0xFEED5EED);
    std::vector<uint8_t> content(300000);
    for (auto &b : content)
        b = static_cast<uint8_t>(rng.uniformInt(0, 255));
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(content.data()),
                  static_cast<std::streamsize>(content.size()));
    }

    // A small window forces several refills; ragged read sizes hit
    // the copy-across-window boundaries.
    util::ReadaheadByteSource src(path, 64 * 1024);
    std::vector<uint8_t> got;
    std::vector<uint8_t> chunk(1 << 14);
    uint64_t step = 1;
    for (;;) {
        size_t want = (step = step * 5 + 1) % chunk.size() + 1;
        size_t n = src.read(chunk.data(), want);
        if (n == 0)
            break;
        got.insert(got.end(), chunk.begin(),
                   chunk.begin() + static_cast<long>(n));
    }
    EXPECT_EQ(got, content);
    std::remove(path.c_str());
}
