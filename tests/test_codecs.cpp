/**
 * @file
 * Codec tests: Van Jacobson (lossless round trip, minimum record
 * size), Peuhkuri (preserved vs resynthesized fields, LRU cache
 * eviction), the proposed FCC codec (structure preservation,
 * statistical fidelity, dataset format robustness) and the §5
 * analytical models, plus the cross-codec ratio ordering of Figure 1.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "codec/compressor.hpp"
#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/models.hpp"
#include "codec/peuhkuri/flow_cache.hpp"
#include "codec/peuhkuri/peuhkuri.hpp"
#include "codec/vj/vj.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

namespace codec = fcc::codec;
namespace fccc = fcc::codec::fcc;
namespace vj = fcc::codec::vj;
namespace peuhkuri = fcc::codec::peuhkuri;
namespace flow = fcc::flow;
namespace trace = fcc::trace;
namespace util = fcc::util;
using fcc::trace::Trace;

namespace {

Trace
webTrace(uint64_t seed = 7, double seconds = 8.0, double rate = 80.0)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = rate;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

/** Packet-level equality at TSH (microsecond) resolution. */
void
expectTshEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].timestampUs(), b[i].timestampUs()) << i;
        EXPECT_EQ(a[i].srcIp, b[i].srcIp) << i;
        EXPECT_EQ(a[i].dstIp, b[i].dstIp) << i;
        EXPECT_EQ(a[i].srcPort, b[i].srcPort) << i;
        EXPECT_EQ(a[i].dstPort, b[i].dstPort) << i;
        EXPECT_EQ(a[i].tcpFlags, b[i].tcpFlags) << i;
        EXPECT_EQ(a[i].payloadBytes, b[i].payloadBytes) << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << i;
        EXPECT_EQ(a[i].ack, b[i].ack) << i;
        EXPECT_EQ(a[i].window, b[i].window) << i;
        EXPECT_EQ(a[i].ipId, b[i].ipId) << i;
    }
}

/** Microsecond-quantized copy (the codecs' reference precision). */
Trace
quantizeUs(const Trace &t)
{
    Trace out;
    for (auto pkt : t) {
        pkt.timestampNs = pkt.timestampUs() * 1000;
        out.add(pkt);
    }
    return out;
}

} // namespace

// ---- Van Jacobson ---------------------------------------------------------

TEST(Vj, LosslessRoundTrip)
{
    Trace t = quantizeUs(webTrace(1));
    vj::VjTraceCompressor codec;
    EXPECT_TRUE(codec.lossless());
    Trace back = codec.decompress(codec.compress(t));
    expectTshEqual(t, back);
}

TEST(Vj, EmptyTrace)
{
    vj::VjTraceCompressor codec;
    Trace empty;
    Trace back = codec.decompress(codec.compress(empty));
    EXPECT_EQ(back.size(), 0u);
}

TEST(Vj, SteadyFlowHitsMinimumRecordSize)
{
    // A long one-directional flow with perfectly predictable headers:
    // all packets after the first should cost exactly 6 bytes.
    Trace t;
    trace::PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;
    pkt.srcPort = 100;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Ack;
    pkt.payloadBytes = 1000;
    pkt.window = 65535;
    for (int i = 0; i < 1000; ++i) {
        pkt.timestampNs = static_cast<uint64_t>(i) * 1000000;  // 1ms
        t.add(pkt);
        pkt.seq += 1000;
        ++pkt.ipId;
    }
    vj::VjTraceCompressor codec;
    auto bytes = codec.compress(t);
    // 4 B magic + 2 B varint count + 40 B full record, then every
    // later packet at exactly the 6-byte minimum.
    EXPECT_EQ(bytes.size(), 4u + 2u + 40u +
                                999u * vj::minEncodedBytes);
    expectTshEqual(t, codec.decompress(bytes));
}

TEST(Vj, RatioNearPaperEstimate)
{
    Trace t = webTrace(2, 12.0, 100.0);
    vj::VjTraceCompressor codec;
    double ratio = codec::measure(codec, t).ratio();
    // Paper: ~30 % for web flow-length mixes.
    EXPECT_GT(ratio, 0.20);
    EXPECT_LT(ratio, 0.40);
}

TEST(Vj, RejectsCorruptStream)
{
    vj::VjTraceCompressor codec;
    auto bytes = codec.compress(quantizeUs(webTrace(3, 2.0)));
    bytes[0] ^= 0xff;  // magic
    EXPECT_THROW(codec.decompress(bytes), util::Error);

    auto bytes2 = codec.compress(quantizeUs(webTrace(3, 2.0)));
    bytes2.resize(bytes2.size() / 3);  // truncation
    EXPECT_THROW(codec.decompress(bytes2), util::Error);
}

TEST(Vj, RejectsUnknownCid)
{
    vj::VjTraceCompressor codec;
    Trace t;
    trace::PacketRecord pkt;
    pkt.timestampNs = 0;
    t.add(pkt);
    auto bytes = codec.compress(t);
    // Append a compressed record for CID 5 (never announced).
    bytes.push_back(0x00);
    bytes.push_back(5);
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(0);
    // Count says 1 packet, so the extra bytes must be rejected as
    // trailing garbage.
    EXPECT_THROW(codec.decompress(bytes), util::Error);
}

// ---- Peuhkuri --------------------------------------------------------------

TEST(Peuhkuri, PreservesTupleTimingFlagsSizes)
{
    Trace t = quantizeUs(webTrace(4));
    peuhkuri::PeuhkuriTraceCompressor codec;
    EXPECT_FALSE(codec.lossless());
    Trace back = codec.decompress(codec.compress(t));
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].timestampUs(), t[i].timestampUs());
        EXPECT_EQ(back[i].srcIp, t[i].srcIp);
        EXPECT_EQ(back[i].dstIp, t[i].dstIp);
        EXPECT_EQ(back[i].srcPort, t[i].srcPort);
        EXPECT_EQ(back[i].dstPort, t[i].dstPort);
        EXPECT_EQ(back[i].tcpFlags, t[i].tcpFlags);
        EXPECT_EQ(back[i].payloadBytes, t[i].payloadBytes);
    }
}

TEST(Peuhkuri, CacheEvictionStillDecodesCorrectly)
{
    // Capacity 2 with 3 interleaved flows forces constant recycling;
    // the announced-on-reappearance protocol must stay correct.
    Trace t;
    for (int round = 0; round < 50; ++round) {
        for (uint16_t f = 0; f < 3; ++f) {
            trace::PacketRecord pkt;
            pkt.timestampNs =
                (static_cast<uint64_t>(round) * 3 + f) * 1000000;
            pkt.srcIp = 10 + f;
            pkt.dstIp = 20;
            pkt.srcPort = static_cast<uint16_t>(1000 + f);
            pkt.dstPort = 80;
            pkt.tcpFlags = trace::tcp_flags::Ack;
            pkt.payloadBytes = static_cast<uint16_t>(f * 100);
            t.add(pkt);
        }
    }
    peuhkuri::PeuhkuriTraceCompressor codec(2);
    Trace back = codec.decompress(codec.compress(t));
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].srcIp, t[i].srcIp);
        EXPECT_EQ(back[i].timestampUs(), t[i].timestampUs());
        EXPECT_EQ(back[i].payloadBytes, t[i].payloadBytes);
    }
}

TEST(Peuhkuri, RatioBetweenFccAndVj)
{
    Trace t = webTrace(5, 12.0, 100.0);
    peuhkuri::PeuhkuriTraceCompressor codec;
    double ratio = codec::measure(codec, t).ratio();
    // Paper bound is 16 %; our faithful re-encoding lands nearby.
    EXPECT_GT(ratio, 0.10);
    EXPECT_LT(ratio, 0.25);
}

TEST(Peuhkuri, RejectsCorruptStream)
{
    peuhkuri::PeuhkuriTraceCompressor codec;
    auto bytes = codec.compress(quantizeUs(webTrace(6, 2.0)));
    bytes[1] ^= 0xff;
    EXPECT_THROW(codec.decompress(bytes), util::Error);
}

TEST(Peuhkuri, RejectsBadCapacity)
{
    EXPECT_THROW(peuhkuri::PeuhkuriTraceCompressor c(0), util::Error);
    EXPECT_THROW(peuhkuri::PeuhkuriTraceCompressor c(0xffff),
                 util::Error);
}

TEST(FlowCache, LruEvictionOrder)
{
    peuhkuri::FlowCache cache(2);
    auto a = cache.touch(1);
    auto b = cache.touch(2);
    EXPECT_TRUE(a.isNew);
    EXPECT_TRUE(b.isNew);
    EXPECT_FALSE(cache.touch(1).isNew);  // 1 now MRU
    auto c = cache.touch(3);             // evicts 2 (LRU)
    EXPECT_TRUE(c.isNew);
    EXPECT_EQ(c.slot, b.slot);
    EXPECT_FALSE(cache.touch(1).isNew);  // 1 survived
    EXPECT_TRUE(cache.touch(2).isNew);   // 2 was evicted
}

TEST(FlowCache, SingleSlotDegenerate)
{
    peuhkuri::FlowCache cache(1);
    EXPECT_TRUE(cache.touch(1).isNew);
    EXPECT_FALSE(cache.touch(1).isNew);
    EXPECT_TRUE(cache.touch(2).isNew);
    EXPECT_TRUE(cache.touch(1).isNew);
}

// ---- FCC (the proposed method) ------------------------------------------

TEST(Fcc, PreservesFlowAndPacketStructure)
{
    Trace t = webTrace(8);
    fccc::FccTraceCompressor codec;
    EXPECT_FALSE(codec.lossless());
    Trace back = codec.decompress(codec.compress(t));

    // Same number of packets: template matching only pairs flows of
    // identical length.
    EXPECT_EQ(back.size(), t.size());

    flow::FlowTable table;
    auto origStats = flow::computeFlowStats(table.assemble(t), t);
    auto backStats =
        flow::computeFlowStats(table.assemble(back), back);
    EXPECT_EQ(backStats.flows, origStats.flows);
    // Flow length distribution preserved exactly.
    EXPECT_EQ(backStats.lengthCounts, origStats.lengthCounts);
}

TEST(Fcc, ReconstructionFollowsPaperRules)
{
    Trace t = webTrace(9, 4.0);
    fccc::FccTraceCompressor codec;
    Trace back = codec.decompress(codec.compress(t));

    std::set<uint32_t> origServers;
    flow::FlowTable table;
    for (const auto &f : table.assemble(t))
        origServers.insert(f.serverIp);

    for (const auto &pkt : back) {
        // §4: client port random in [1024, 65000], server port 80.
        bool toServer = pkt.dstPort == 80;
        bool fromServer = pkt.srcPort == 80;
        EXPECT_TRUE(toServer != fromServer);
        uint16_t clientPort = toServer ? pkt.srcPort : pkt.dstPort;
        EXPECT_GE(clientPort, 1024);
        EXPECT_LE(clientPort, 65000);
        // The server side of every packet comes from the address
        // dataset (original server addresses).
        uint32_t serverIp = toServer ? pkt.dstIp : pkt.srcIp;
        EXPECT_TRUE(origServers.count(serverIp)) << serverIp;
    }
}

TEST(Fcc, StatisticalFidelityOfClassDistributions)
{
    Trace t = webTrace(10, 10.0, 100.0);
    fccc::FccTraceCompressor codec;
    Trace back = codec.decompress(codec.compress(t));
    ASSERT_EQ(back.size(), t.size());

    auto classCounts = [](const Trace &tr) {
        std::map<int, double> flags;
        std::map<int, double> sizes;
        for (const auto &pkt : tr) {
            ++flags[static_cast<int>(
                flow::flagClass(pkt.tcpFlags))];
            ++sizes[static_cast<int>(
                flow::sizeClass(pkt.payloadBytes))];
        }
        for (auto &[k, v] : flags)
            v /= static_cast<double>(tr.size());
        for (auto &[k, v] : sizes)
            v /= static_cast<double>(tr.size());
        return std::pair(flags, sizes);
    };

    auto [origFlags, origSizes] = classCounts(t);
    auto [backFlags, backSizes] = classCounts(back);
    for (const auto &[cls, share] : origFlags)
        EXPECT_NEAR(backFlags[cls], share, 0.02) << "flag " << cls;
    for (const auto &[cls, share] : origSizes)
        EXPECT_NEAR(backSizes[cls], share, 0.02) << "size " << cls;
}

TEST(Fcc, TimestampsStayCloseToOriginal)
{
    Trace t = webTrace(11, 6.0);
    fccc::FccTraceCompressor codec;
    Trace back = codec.decompress(codec.compress(t));
    EXPECT_TRUE(back.isTimeOrdered());
    // Flow start times are exact; within-flow timing is modeled, so
    // the overall spans must agree closely.
    EXPECT_EQ(back[0].timestampUs(), t[0].timestampUs());
    EXPECT_NEAR(back.durationSec(), t.durationSec(),
                t.durationSec() * 0.2 + 1.0);
}

TEST(Fcc, RatioNearPaperEstimate)
{
    Trace t = webTrace(12, 15.0, 120.0);
    fccc::FccTraceCompressor codec;
    double ratio = codec::measure(codec, t).ratio();
    // Paper: ~3 %.
    EXPECT_GT(ratio, 0.01);
    EXPECT_LT(ratio, 0.06);
}

TEST(Fcc, TimeSeqIsAboutEightBytesPerFlow)
{
    Trace t = webTrace(13, 15.0, 120.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    codec.compressWithStats(t, stats);
    double perFlow = static_cast<double>(stats.sizes.timeSeqBytes) /
                     static_cast<double>(stats.flows);
    // §5: "8 bytes are sufficient to represent each flow".
    EXPECT_GT(perFlow, 5.0);
    EXPECT_LT(perFlow, 11.0);
}

TEST(Fcc, ClusterCountIsSmall)
{
    Trace t = webTrace(14, 15.0, 120.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    codec.compressWithStats(t, stats);
    EXPECT_GT(stats.hitRate(), 0.85);
    EXPECT_LT(stats.shortTemplatesCreated, stats.shortFlows / 10);
    EXPECT_EQ(stats.flows, stats.shortFlows + stats.longFlows);
}

TEST(Fcc, LongFlowsKeepExactTiming)
{
    // One long flow (> 50 packets): inter-packet times must be
    // reproduced exactly (the long-flows-template stores them).
    Trace t;
    trace::PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;
    pkt.srcPort = 1234;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Ack;
    pkt.payloadBytes = 800;
    uint64_t ts = 0;
    for (int i = 0; i < 80; ++i) {
        ts += 1000 + static_cast<uint64_t>(i) * 37;
        pkt.timestampNs = ts * 1000;
        t.add(pkt);
    }
    fccc::FccTraceCompressor codec;
    Trace back = codec.decompress(codec.compress(t));
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 1; i < t.size(); ++i) {
        EXPECT_EQ(back[i].timestampUs() - back[i - 1].timestampUs(),
                  t[i].timestampUs() - t[i - 1].timestampUs());
    }
}

TEST(Fcc, CustomWeightsRoundTrip)
{
    fccc::FccConfig cfg;
    cfg.weights = flow::Weights{32, 8, 2};
    fccc::FccTraceCompressor codec(cfg);
    Trace t = webTrace(15, 3.0);
    Trace back = codec.decompress(codec.compress(t));
    EXPECT_EQ(back.size(), t.size());
}

TEST(Fcc, RejectsBadWeights)
{
    fccc::FccConfig cfg;
    cfg.weights = flow::Weights{4, 4, 4};
    EXPECT_THROW(fccc::FccTraceCompressor{cfg}, util::Error);
    // Weights whose max S exceeds one byte are rejected eagerly.
    cfg.weights = flow::Weights{100, 20, 5};
    EXPECT_THROW(fccc::FccTraceCompressor{cfg}, util::Error);
}

TEST(Fcc, DatasetSerializationRoundTrip)
{
    Trace t = webTrace(16, 4.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    fccc::Datasets d = codec.buildDatasets(t, stats);
    auto bytes = fccc::serialize(d);
    fccc::Datasets back = fccc::deserialize(bytes);
    EXPECT_EQ(back.shortTemplates.size(), d.shortTemplates.size());
    EXPECT_EQ(back.longTemplates.size(), d.longTemplates.size());
    EXPECT_EQ(back.addresses, d.addresses);
    ASSERT_EQ(back.timeSeq.size(), d.timeSeq.size());
    for (size_t i = 0; i < d.timeSeq.size(); ++i) {
        EXPECT_EQ(back.timeSeq[i].firstTimestampUs,
                  d.timeSeq[i].firstTimestampUs);
        EXPECT_EQ(back.timeSeq[i].isLong, d.timeSeq[i].isLong);
        EXPECT_EQ(back.timeSeq[i].templateIndex,
                  d.timeSeq[i].templateIndex);
        EXPECT_EQ(back.timeSeq[i].rttUs, d.timeSeq[i].rttUs);
        EXPECT_EQ(back.timeSeq[i].addressIndex,
                  d.timeSeq[i].addressIndex);
    }
    // Templates compare element-wise.
    for (size_t i = 0; i < d.shortTemplates.size(); ++i)
        EXPECT_EQ(back.shortTemplates[i].values,
                  d.shortTemplates[i].values);
    for (size_t i = 0; i < d.longTemplates.size(); ++i) {
        EXPECT_EQ(back.longTemplates[i].sValues,
                  d.longTemplates[i].sValues);
        EXPECT_EQ(back.longTemplates[i].iptUs,
                  d.longTemplates[i].iptUs);
    }
}

TEST(Fcc, RejectsCorruptStreams)
{
    Trace t = webTrace(17, 2.0);
    fccc::FccTraceCompressor codec;
    auto bytes = codec.compress(t);

    auto bad = bytes;
    bad[0] ^= 0xff;  // magic
    EXPECT_THROW(codec.decompress(bad), util::Error);

    bad = bytes;
    bad.resize(bad.size() - 5);  // truncated
    EXPECT_THROW(codec.decompress(bad), util::Error);

    bad = bytes;
    bad.push_back(0);  // trailing garbage
    EXPECT_THROW(codec.decompress(bad), util::Error);
}

TEST(Fcc, RecompressionIsStable)
{
    // Compressing the reconstruction again must not blow up: the
    // reconstruction is itself a well-formed web trace.
    Trace t = webTrace(18, 6.0);
    fccc::FccTraceCompressor codec;
    auto first = codec.compress(t);
    Trace back = codec.decompress(first);
    auto second = codec.compress(back);
    EXPECT_LT(second.size(), first.size() * 2);
    EXPECT_GT(second.size(), first.size() / 4);
}

TEST(Fcc, EmptyTrace)
{
    fccc::FccTraceCompressor codec;
    Trace empty;
    Trace back = codec.decompress(codec.compress(empty));
    EXPECT_EQ(back.size(), 0u);
}

// ---- analytical models (§5) ---------------------------------------------

TEST(Models, VjEquation)
{
    // eq. 5: r(1) = 1 (full header); large n tends to 6/50 = 12 %.
    EXPECT_DOUBLE_EQ(codec::vjRatio(1), 1.0);
    EXPECT_NEAR(codec::vjRatio(1000), 0.12, 0.002);
    EXPECT_DOUBLE_EQ(codec::vjRatio(2), (50.0 + 6.0) / 100.0);
}

TEST(Models, FccEquation)
{
    // eq. 7: r(n) = 8 / (50 n).
    EXPECT_DOUBLE_EQ(codec::fccRatio(1), 8.0 / 50.0);
    EXPECT_DOUBLE_EQ(codec::fccRatio(10), 8.0 / 500.0);
}

TEST(Models, PeuhkuriBound)
{
    EXPECT_DOUBLE_EQ(codec::peuhkuriRatio(), 0.16);
}

TEST(Models, AggregateOverPaperLikeDistribution)
{
    // A web-like flow-length mix gives the paper's headline numbers:
    // VJ ~30 %, proposed ~3 %.
    Trace t = webTrace(19, 20.0, 120.0);
    flow::FlowTable table;
    auto stats = flow::computeFlowStats(table.assemble(t), t);
    auto dist = stats.lengthDistribution();

    // Our generator's connection-length mix is somewhat longer than
    // the paper's traces (the model is evaluated per bidirectional
    // connection here), so the VJ aggregate lands slightly below the
    // paper's 30 %; the proposed method's ~1-3 % and the 10x gap
    // between them are the shape under test.
    double vj = codec::aggregateRatio(dist, codec::vjRatio);
    double prop = codec::aggregateRatio(dist, codec::fccRatio);
    EXPECT_GT(vj, 0.12);
    EXPECT_LT(vj, 0.45);
    EXPECT_GT(prop, 0.005);
    EXPECT_LT(prop, 0.05);
    EXPECT_GT(vj / prop, 8.0);
}

TEST(Models, AggregateValidatesInput)
{
    EXPECT_THROW(codec::aggregateRatio({}, codec::vjRatio), util::Error);
    EXPECT_THROW(codec::aggregateRatio({{1, -0.5}}, codec::vjRatio), util::Error);
}

// ---- cross-codec ordering (Figure 1) -------------------------------------

TEST(AllCodecs, RegistryHasFourMethods)
{
    auto codecs = codec::makeAllCodecs();
    ASSERT_EQ(codecs.size(), 4u);
    EXPECT_EQ(codecs[0]->name(), "gzip");
    EXPECT_EQ(codecs[1]->name(), "vj");
    EXPECT_EQ(codecs[2]->name(), "peuhkuri");
    EXPECT_EQ(codecs[3]->name(), "fcc");
}

TEST(AllCodecs, Figure1Ordering)
{
    // The paper's Figure 1: original > gzip > vj > peuhkuri >
    // proposed, at every trace length.
    Trace t = webTrace(20, 16.0, 100.0);
    std::map<std::string, double> ratio;
    for (const auto &codec : codec::makeAllCodecs())
        ratio[codec->name()] = codec::measure(*codec, t).ratio();

    EXPECT_LT(ratio["gzip"], 1.0);
    EXPECT_LT(ratio["vj"], ratio["gzip"]);
    EXPECT_LT(ratio["peuhkuri"], ratio["vj"]);
    EXPECT_LT(ratio["fcc"], ratio["peuhkuri"]);
    // Headline magnitudes.
    EXPECT_NEAR(ratio["gzip"], 0.50, 0.12);
    EXPECT_NEAR(ratio["vj"], 0.30, 0.06);
    EXPECT_NEAR(ratio["fcc"], 0.03, 0.02);
}

TEST(AllCodecs, MeasureUsesTshBaseline)
{
    Trace t = webTrace(21, 2.0);
    vj::VjTraceCompressor codec;
    auto report = codec::measure(codec, t);
    EXPECT_EQ(report.originalTshBytes,
              t.size() * trace::tshRecordBytes);
    EXPECT_EQ(report.codec, "vj");
    EXPECT_GT(report.ratio(), 0.0);
}

TEST(AllCodecs, LosslessCodecsRoundTripViaTsh)
{
    // The lossless codecs must commute with TSH serialization.
    Trace t = quantizeUs(webTrace(22, 3.0));
    for (const auto &codec : codec::makeAllCodecs()) {
        if (!codec->lossless())
            continue;
        Trace back = codec->decompress(codec->compress(t));
        EXPECT_EQ(trace::writeTsh(back), trace::writeTsh(t))
            << codec->name();
    }
}
