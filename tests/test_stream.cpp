/**
 * @file
 * Streaming (file-to-file) FCC interface tests: equivalence with the
 * in-memory codec, the §4 incremental flush, and error paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

trace::Trace
webTrace(uint64_t seed, double seconds)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

/** Field-wise total order so traces compare as multisets. */
bool
packetLess(const trace::PacketRecord &a, const trace::PacketRecord &b)
{
    auto key = [](const trace::PacketRecord &p) {
        return std::tuple(p.timestampNs, p.srcIp, p.dstIp, p.srcPort,
                          p.dstPort, p.tcpFlags, p.payloadBytes,
                          p.seq, p.ack, p.window, p.ipId);
    };
    return key(a) < key(b);
}

} // namespace

TEST(Stream, CompressedFileDecodesLikeInMemory)
{
    trace::Trace original = webTrace(31, 6.0);
    std::string tshIn = tempPath("stream_in.tsh");
    std::string fccOut = tempPath("stream_out.fcc");
    trace::writeTshFile(original, tshIn);

    auto stats = fccc::compressTshFile(tshIn, fccOut);
    EXPECT_EQ(stats.packets, original.size());
    EXPECT_EQ(stats.inputBytes,
              original.size() * trace::tshRecordBytes);
    EXPECT_GT(stats.flows, 100u);
    EXPECT_LT(stats.ratio(), 0.06);
    EXPECT_GT(stats.ratio(), 0.01);

    // The file decodes with the normal codec and preserves flow
    // structure exactly.
    std::ifstream in(fccOut, std::ios::binary);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    fccc::FccTraceCompressor codec;
    trace::Trace restored = codec.decompress(bytes);
    EXPECT_EQ(restored.size(), original.size());

    flow::FlowTable table;
    auto origStats =
        flow::computeFlowStats(table.assemble(original), original);
    auto backStats =
        flow::computeFlowStats(table.assemble(restored), restored);
    EXPECT_EQ(backStats.flows, origStats.flows);
    EXPECT_EQ(backStats.lengthCounts, origStats.lengthCounts);

    std::remove(tshIn.c_str());
    std::remove(fccOut.c_str());
}

TEST(Stream, StreamingRatioMatchesInMemory)
{
    trace::Trace original = webTrace(32, 6.0);
    std::string tshIn = tempPath("ratio_in.tsh");
    std::string fccOut = tempPath("ratio_out.fcc");
    trace::writeTshFile(original, tshIn);

    auto stats = fccc::compressTshFile(tshIn, fccOut);
    fccc::FccTraceCompressor codec;
    size_t inMemory = codec.compress(original).size();
    // Template indices can differ (flows close in a different order)
    // but the sizes must be nearly identical.
    EXPECT_NEAR(static_cast<double>(stats.outputBytes),
                static_cast<double>(inMemory),
                static_cast<double>(inMemory) * 0.02);

    std::remove(tshIn.c_str());
    std::remove(fccOut.c_str());
}

TEST(Stream, DecompressMatchesBatchExactly)
{
    // Feeding a batch-compressed stream through the streaming
    // decompressor must reproduce the batch reconstruction packet
    // for packet (same seed, same record order).
    trace::Trace original = webTrace(33, 5.0);
    fccc::FccTraceCompressor codec;
    auto bytes = codec.compress(original);
    trace::Trace batch = codec.decompress(bytes);

    std::string fccIn = tempPath("batch.fcc");
    std::string tshOut = tempPath("streamed.tsh");
    writeBytes(fccIn, bytes);
    auto stats = fccc::decompressToTshFile(fccIn, tshOut);
    EXPECT_EQ(stats.packets, batch.size());
    EXPECT_EQ(stats.flows,
              flow::FlowTable().assemble(original).size());

    trace::Trace streamed = trace::readTshFile(tshOut);
    ASSERT_EQ(streamed.size(), batch.size());

    // Compare as multisets (equal timestamps may interleave
    // differently between the heap flush and the batch sort).
    std::vector<trace::PacketRecord> a = batch.packets();
    std::vector<trace::PacketRecord> b = streamed.packets();
    std::sort(a.begin(), a.end(), packetLess);
    std::sort(b.begin(), b.end(), packetLess);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].timestampUs(), b[i].timestampUs()) << i;
        EXPECT_EQ(a[i].srcIp, b[i].srcIp) << i;
        EXPECT_EQ(a[i].dstIp, b[i].dstIp) << i;
        EXPECT_EQ(a[i].tcpFlags, b[i].tcpFlags) << i;
        EXPECT_EQ(a[i].payloadBytes, b[i].payloadBytes) << i;
    }

    // The streamed output is itself time-ordered.
    EXPECT_TRUE(streamed.isTimeOrdered());

    std::remove(fccIn.c_str());
    std::remove(tshOut.c_str());
}

TEST(Stream, FullFileRoundTrip)
{
    trace::Trace original = webTrace(34, 4.0);
    std::string tshIn = tempPath("rt_in.tsh");
    std::string fccMid = tempPath("rt_mid.fcc");
    std::string tshOut = tempPath("rt_out.tsh");
    trace::writeTshFile(original, tshIn);

    fccc::compressTshFile(tshIn, fccMid);
    auto stats = fccc::decompressToTshFile(fccMid, tshOut);
    EXPECT_EQ(stats.packets, original.size());

    trace::Trace restored = trace::readTshFile(tshOut);
    EXPECT_EQ(restored.size(), original.size());
    EXPECT_TRUE(restored.isTimeOrdered());

    std::remove(tshIn.c_str());
    std::remove(fccMid.c_str());
    std::remove(tshOut.c_str());
}

TEST(Stream, MissingInputFileThrows)
{
    EXPECT_THROW(fccc::compressTshFile(tempPath("nope.tsh"),
                                       tempPath("x.fcc")),
                 util::Error);
    EXPECT_THROW(fccc::decompressToTshFile(tempPath("nope.fcc"),
                                           tempPath("x.tsh")),
                 util::Error);
}

TEST(Stream, PartialTshRecordRejected)
{
    std::string path = tempPath("partial.tsh");
    std::vector<uint8_t> bad(trace::tshRecordBytes + 7, 0);
    // Make the first record a valid IPv4 header so only the trailing
    // partial record is at fault.
    trace::Trace one;
    trace::PacketRecord pkt;
    one.add(pkt);
    auto good = trace::writeTsh(one);
    std::copy(good.begin(), good.end(), bad.begin());
    writeBytes(path, bad);
    EXPECT_THROW(fccc::compressTshFile(path, tempPath("x.fcc")),
                 util::Error);
    std::remove(path.c_str());
}

TEST(Stream, UnorderedInputRejected)
{
    trace::Trace tr;
    trace::PacketRecord pkt;
    pkt.timestampNs = 2000000;
    tr.add(pkt);
    pkt.timestampNs = 1000000;
    tr.add(pkt);
    std::string path = tempPath("unordered.tsh");
    trace::writeTshFile(tr, path);
    EXPECT_THROW(fccc::compressTshFile(path, tempPath("x.fcc")),
                 util::Error);
    std::remove(path.c_str());
}
