/**
 * @file
 * Streaming (file-to-file) FCC interface tests: equivalence with the
 * in-memory codec, the §4 incremental flush, and error paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

trace::Trace
webTrace(uint64_t seed, double seconds)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

using fcc::test::tempPath;

/** Explicit TSH spec: these fixtures move raw 44-byte records. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

void
writeBytes(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

/** Field-wise total order so traces compare as multisets. */
bool
packetLess(const trace::PacketRecord &a, const trace::PacketRecord &b)
{
    auto key = [](const trace::PacketRecord &p) {
        return std::tuple(p.timestampNs, p.srcIp, p.dstIp, p.srcPort,
                          p.dstPort, p.tcpFlags, p.payloadBytes,
                          p.seq, p.ack, p.window, p.ipId);
    };
    return key(a) < key(b);
}

} // namespace

TEST(Stream, CompressedFileDecodesLikeInMemory)
{
    trace::Trace original = webTrace(31, 6.0);
    std::string tshIn = tempPath("stream_in.tsh");
    std::string fccOut = tempPath("stream_out.fcc");
    trace::writeTshFile(original, tshIn);

    auto stats = fccc::compressTraceFile(tshIn, fccOut, {}, kTsh);
    EXPECT_EQ(stats.packets, original.size());
    EXPECT_EQ(stats.inputBytes,
              original.size() * trace::tshRecordBytes);
    EXPECT_GT(stats.flows, 100u);
    EXPECT_LT(stats.ratio(), 0.06);
    EXPECT_GT(stats.ratio(), 0.01);

    // The file decodes with the normal codec and preserves flow
    // structure exactly.
    std::ifstream in(fccOut, std::ios::binary);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    fccc::FccTraceCompressor codec;
    trace::Trace restored = codec.decompress(bytes);
    EXPECT_EQ(restored.size(), original.size());

    flow::FlowTable table;
    auto origStats =
        flow::computeFlowStats(table.assemble(original), original);
    auto backStats =
        flow::computeFlowStats(table.assemble(restored), restored);
    EXPECT_EQ(backStats.flows, origStats.flows);
    EXPECT_EQ(backStats.lengthCounts, origStats.lengthCounts);

    std::remove(tshIn.c_str());
    std::remove(fccOut.c_str());
}

TEST(Stream, StreamingRatioMatchesInMemory)
{
    trace::Trace original = webTrace(32, 6.0);
    std::string tshIn = tempPath("ratio_in.tsh");
    std::string fccOut = tempPath("ratio_out.fcc");
    trace::writeTshFile(original, tshIn);

    auto stats = fccc::compressTraceFile(tshIn, fccOut, {}, kTsh);
    fccc::FccTraceCompressor codec;
    size_t inMemory = codec.compress(original).size();
    // Template indices can differ (flows close in a different order)
    // but the sizes must be nearly identical.
    EXPECT_NEAR(static_cast<double>(stats.outputBytes),
                static_cast<double>(inMemory),
                static_cast<double>(inMemory) * 0.02);

    std::remove(tshIn.c_str());
    std::remove(fccOut.c_str());
}

TEST(Stream, DecompressMatchesBatchExactly)
{
    // Feeding a batch-compressed stream through the streaming
    // decompressor must reproduce the batch reconstruction packet
    // for packet (same seed, same record order).
    trace::Trace original = webTrace(33, 5.0);
    fccc::FccTraceCompressor codec;
    auto bytes = codec.compress(original);
    trace::Trace batch = codec.decompress(bytes);

    std::string fccIn = tempPath("batch.fcc");
    std::string tshOut = tempPath("streamed.tsh");
    writeBytes(fccIn, bytes);
    auto stats =
        fccc::decompressTraceFile(fccIn, tshOut, {}, kTsh);
    EXPECT_EQ(stats.packets, batch.size());
    EXPECT_EQ(stats.flows,
              flow::FlowTable().assemble(original).size());

    trace::Trace streamed = trace::readTshFile(tshOut);
    ASSERT_EQ(streamed.size(), batch.size());

    // Compare as multisets (equal timestamps may interleave
    // differently between the heap flush and the batch sort).
    std::vector<trace::PacketRecord> a = batch.packets();
    std::vector<trace::PacketRecord> b = streamed.packets();
    std::sort(a.begin(), a.end(), packetLess);
    std::sort(b.begin(), b.end(), packetLess);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].timestampUs(), b[i].timestampUs()) << i;
        EXPECT_EQ(a[i].srcIp, b[i].srcIp) << i;
        EXPECT_EQ(a[i].dstIp, b[i].dstIp) << i;
        EXPECT_EQ(a[i].tcpFlags, b[i].tcpFlags) << i;
        EXPECT_EQ(a[i].payloadBytes, b[i].payloadBytes) << i;
    }

    // The streamed output is itself time-ordered.
    EXPECT_TRUE(streamed.isTimeOrdered());

    std::remove(fccIn.c_str());
    std::remove(tshOut.c_str());
}

TEST(Stream, FullFileRoundTrip)
{
    trace::Trace original = webTrace(34, 4.0);
    std::string tshIn = tempPath("rt_in.tsh");
    std::string fccMid = tempPath("rt_mid.fcc");
    std::string tshOut = tempPath("rt_out.tsh");
    trace::writeTshFile(original, tshIn);

    fccc::compressTraceFile(tshIn, fccMid, {}, kTsh);
    auto stats =
        fccc::decompressTraceFile(fccMid, tshOut, {}, kTsh);
    EXPECT_EQ(stats.packets, original.size());

    trace::Trace restored = trace::readTshFile(tshOut);
    EXPECT_EQ(restored.size(), original.size());
    EXPECT_TRUE(restored.isTimeOrdered());

    std::remove(tshIn.c_str());
    std::remove(fccMid.c_str());
    std::remove(tshOut.c_str());
}

TEST(Stream, CrossContainerMatrixDecodesIdentically)
{
    // One trace, compressed as FCC1, FCC2 and FCC3, must decompress
    // to the identical TSH bytes. Expansion is driven by the chunk
    // layout (one RNG stream per chunk, or the sequential legacy
    // stream when unchunked), so equal layouts mean equal bytes:
    // unchunked, all three containers agree; chunked, FCC2 and FCC3
    // agree.
    trace::Trace original = webTrace(35, 5.0);
    std::string tshIn = tempPath("matrix_in.tsh");
    trace::writeTshFile(original, tshIn);

    auto compressAs = [&](fccc::ContainerFormat container,
                          uint32_t chunkRecords,
                          const char *name) {
        fccc::FccConfig cfg;
        cfg.container = container;
        cfg.chunkRecords = chunkRecords;
        std::string fcc = tempPath(name) + ".fcc";
        fccc::compressTraceFile(tshIn, fcc, cfg);
        std::string tsh = tempPath(name) + ".tsh";
        fccc::decompressTraceFile(fcc, tsh, cfg, kTsh);
        std::ifstream in(tsh, std::ios::binary);
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_FALSE(bytes.empty()) << name;
        std::remove(fcc.c_str());
        std::remove(tsh.c_str());
        return bytes;
    };

    // Unchunked: all three containers, one sequential RNG stream.
    auto v1 = compressAs(fccc::ContainerFormat::Fcc1, 0, "mx1");
    auto v2 = compressAs(fccc::ContainerFormat::Fcc2, 0, "mx2");
    auto v3 = compressAs(fccc::ContainerFormat::Fcc3, 0, "mx3");
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(v1, v3);

    // Chunked: FCC2 and FCC3 share the chunk layout and RNG streams.
    auto c2 = compressAs(fccc::ContainerFormat::Fcc2, 256, "mc2");
    auto c3 = compressAs(fccc::ContainerFormat::Fcc3, 256, "mc3");
    EXPECT_EQ(c2, c3);

    std::remove(tshIn.c_str());
}

TEST(Stream, Fcc3DeflateNoLargerThanFcc2)
{
    // The acceptance bar of the columnar refactor: on the reference
    // seed-2005 trace, FCC3 with the deflate backend must not lose
    // to the FCC2 whole-blob baseline.
    trace::Trace original = webTrace(2005, 8.0);
    std::string tshIn = tempPath("sz_in.tsh");
    trace::writeTshFile(original, tshIn);

    fccc::FccConfig cfg2;
    cfg2.container = fccc::ContainerFormat::Fcc2;
    std::string f2 = tempPath("sz2.fcc");
    auto s2 = fccc::compressTraceFile(tshIn, f2, cfg2);

    fccc::FccConfig cfg3;
    cfg3.container = fccc::ContainerFormat::Fcc3;
    cfg3.backend = codec::backend::EntropyBackend::Deflate;
    std::string f3 = tempPath("sz3.fcc");
    auto s3 = fccc::compressTraceFile(tshIn, f3, cfg3);

    EXPECT_LE(s3.outputBytes, s2.outputBytes);
    EXPECT_GT(s3.outputBytes, 0u);

    std::remove(tshIn.c_str());
    std::remove(f2.c_str());
    std::remove(f3.c_str());
}

TEST(Stream, Fcc3ByteIdenticalAcrossThreadCounts)
{
    // FCC3 with the deflate backend round-trips byte-identically at
    // 1/2/4/8 threads, both directions.
    trace::Trace original = webTrace(36, 5.0);
    std::string tshIn = tempPath("thr_in.tsh");
    trace::writeTshFile(original, tshIn);

    std::vector<uint8_t> refFcc, refTsh;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        fccc::FccConfig cfg;
        cfg.container = fccc::ContainerFormat::Fcc3;
        cfg.threads = threads;
        cfg.chunkRecords = 64;  // span several chunks
        std::string fcc = tempPath("thr.fcc");
        fccc::compressTraceFile(tshIn, fcc, cfg);
        std::ifstream in(fcc, std::ios::binary);
        std::vector<uint8_t> fccBytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        auto tshBytes = trace::writeTsh(
            fccc::FccTraceCompressor(cfg).decompress(fccBytes));
        if (threads == 1) {
            refFcc = fccBytes;
            refTsh = tshBytes;
            EXPECT_FALSE(refFcc.empty());
        } else {
            EXPECT_EQ(fccBytes, refFcc) << threads << " threads";
            EXPECT_EQ(tshBytes, refTsh) << threads << " threads";
        }
        std::remove(fcc.c_str());
    }
    std::remove(tshIn.c_str());
}

TEST(Stream, HybridDeflateRoundTripsViaStreaming)
{
    // The whole-blob hybrid deflate must work file-to-file in both
    // directions: streaming compression writes the zlib wrapper
    // (same single serializeDatasets entry point as the in-memory
    // codec) and streaming decompression unwraps it before
    // container detection.
    trace::Trace original = webTrace(37, 4.0);
    std::string tshIn = tempPath("hybrid_in.tsh");
    trace::writeTshFile(original, tshIn);

    fccc::FccConfig cfg;
    cfg.deflateDatasets = true;
    std::string fccMid = tempPath("hybrid.fcc");
    std::string tshOut = tempPath("hybrid.tsh");
    auto cstats = fccc::compressTraceFile(tshIn, fccMid, cfg);

    std::ifstream in(fccMid, std::ios::binary);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes[0], 0x78);  // zlib CMF
    EXPECT_EQ(cstats.outputBytes, bytes.size());

    auto stats =
        fccc::decompressTraceFile(fccMid, tshOut, cfg, kTsh);
    EXPECT_EQ(stats.packets, original.size());
    EXPECT_EQ(stats.inputBytes, bytes.size());

    std::remove(tshIn.c_str());
    std::remove(fccMid.c_str());
    std::remove(tshOut.c_str());
}

TEST(Stream, MissingInputFileThrows)
{
    EXPECT_THROW(fccc::compressTraceFile(tempPath("nope.tsh"),
                                         tempPath("x.fcc"), {},
                                         kTsh),
                 util::Error);
    EXPECT_THROW(fccc::decompressTraceFile(tempPath("nope.fcc"),
                                           tempPath("x.tsh"), {},
                                           kTsh),
                 util::Error);
}

TEST(Stream, PartialTshRecordRejected)
{
    std::string path = tempPath("partial.tsh");
    std::vector<uint8_t> bad(trace::tshRecordBytes + 7, 0);
    // Make the first record a valid IPv4 header so only the trailing
    // partial record is at fault.
    trace::Trace one;
    trace::PacketRecord pkt;
    one.add(pkt);
    auto good = trace::writeTsh(one);
    std::copy(good.begin(), good.end(), bad.begin());
    writeBytes(path, bad);
    EXPECT_THROW(fccc::compressTraceFile(path, tempPath("x.fcc"),
                                         {}, kTsh),
                 util::Error);
    std::remove(path.c_str());
}

TEST(Stream, UnorderedInputRejected)
{
    trace::Trace tr;
    trace::PacketRecord pkt;
    pkt.timestampNs = 2000000;
    tr.add(pkt);
    pkt.timestampNs = 1000000;
    tr.add(pkt);
    std::string path = tempPath("unordered.tsh");
    trace::writeTshFile(tr, path);
    EXPECT_THROW(fccc::compressTraceFile(path, tempPath("x.fcc"),
                                         {}, kTsh),
                 util::Error);
    std::remove(path.c_str());
}
