/**
 * @file
 * Prefix-preserving anonymization tests: bijectivity, exact
 * common-prefix preservation, key sensitivity, and the headline
 * property — longest-prefix-match routing behaviour survives
 * anonymization (unlike naive random sanitization, the §1 concern).
 * Also covers the FCC hybrid deflate-datasets mode.
 */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "analysis/anonymize.hpp"
#include "analysis/semantic.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "memsim/profile_report.hpp"
#include "netbench/apps.hpp"
#include "trace/transforms.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/rng.hpp"

using namespace fcc;
using analysis::PrefixPreservingAnonymizer;

namespace {

uint32_t
commonPrefixLen(uint32_t a, uint32_t b)
{
    return a == b ? 32 : static_cast<uint32_t>(
                             std::countl_zero(a ^ b));
}

trace::Trace
webTrace(uint64_t seed = 71, double seconds = 5.0)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

} // namespace

TEST(Anonymize, DeterministicAndKeyed)
{
    PrefixPreservingAnonymizer a(1), b(1), c(2);
    EXPECT_EQ(a.anonymize(0x0a000001), b.anonymize(0x0a000001));
    EXPECT_NE(a.anonymize(0x0a000001), c.anonymize(0x0a000001));
}

TEST(Anonymize, BijectiveOnSample)
{
    PrefixPreservingAnonymizer anon(42);
    util::Rng rng(1);
    std::set<uint32_t> outputs;
    for (int i = 0; i < 20000; ++i) {
        uint32_t addr = static_cast<uint32_t>(rng.next());
        outputs.insert(anon.anonymize(addr));
    }
    // Distinct inputs (with overwhelming probability) give distinct
    // outputs; collisions would show as a smaller output set.
    EXPECT_GE(outputs.size(), 19990u);
}

TEST(Anonymize, PreservesCommonPrefixesExactly)
{
    PrefixPreservingAnonymizer anon(7);
    util::Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        // Perturb a at a random bit to control the shared prefix.
        uint32_t bitPos = static_cast<uint32_t>(
            rng.uniformInt(0, 31));
        uint32_t b = a ^ (1u << (31 - bitPos)) ^
                     (static_cast<uint32_t>(rng.next()) &
                      ((bitPos >= 31)
                           ? 0u
                           : ((1u << (31 - bitPos)) - 1)));
        uint32_t before = commonPrefixLen(a, b);
        uint32_t after =
            commonPrefixLen(anon.anonymize(a), anon.anonymize(b));
        EXPECT_EQ(after, before)
            << trace::formatIp(a) << " vs " << trace::formatIp(b);
    }
}

TEST(Anonymize, ActuallyChangesAddresses)
{
    PrefixPreservingAnonymizer anon(9);
    util::Rng rng(3);
    size_t changed = 0;
    for (int i = 0; i < 1000; ++i) {
        uint32_t addr = static_cast<uint32_t>(rng.next());
        changed += anon.anonymize(addr) != addr;
    }
    EXPECT_GT(changed, 990u);
}

TEST(Anonymize, TracePreservesEverythingButAddresses)
{
    trace::Trace original = webTrace();
    PrefixPreservingAnonymizer anon(11);
    trace::Trace masked = anon.anonymizeTrace(original);
    ASSERT_EQ(masked.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(masked[i].timestampNs, original[i].timestampNs);
        EXPECT_EQ(masked[i].srcPort, original[i].srcPort);
        EXPECT_EQ(masked[i].payloadBytes, original[i].payloadBytes);
        EXPECT_EQ(masked[i].tcpFlags, original[i].tcpFlags);
    }
}

TEST(Anonymize, ReuseDistancesAreInvariant)
{
    // A bijection cannot change temporal locality.
    trace::Trace original = webTrace(72);
    PrefixPreservingAnonymizer anon(13);
    trace::Trace masked = anon.anonymizeTrace(original);
    auto a = analysis::reuseDistances(original);
    auto b = analysis::reuseDistances(masked);
    EXPECT_EQ(a.coldAccesses, b.coldAccesses);
    EXPECT_DOUBLE_EQ(a.distances.ksDistance(b.distances), 0.0);
}

TEST(Anonymize, PrefixCountsAreInvariant)
{
    trace::Trace original = webTrace(73);
    PrefixPreservingAnonymizer anon(17);
    trace::Trace masked = anon.anonymizeTrace(original);
    auto a = analysis::addressStructure(original);
    auto b = analysis::addressStructure(masked);
    EXPECT_EQ(a.distinctAddresses, b.distinctAddresses);
    EXPECT_EQ(a.distinctSlash8, b.distinctSlash8);
    EXPECT_EQ(a.distinctSlash16, b.distinctSlash16);
    EXPECT_EQ(a.distinctSlash24, b.distinctSlash24);
}

TEST(Anonymize, RoutingBehaviourSurvives)
{
    // Anonymize trace AND table under one key: the radix tree walk
    // profile must be identical packet for packet — exactly why
    // prefix-preserving sanitization beats the naive kind the paper
    // complains about.
    trace::Trace original = webTrace(74, 4.0);
    PrefixPreservingAnonymizer anon(19);
    trace::Trace masked = anon.anonymizeTrace(original);

    std::vector<uint32_t> dsts;
    for (const auto &pkt : original)
        dsts.push_back(pkt.dstIp);
    auto table = netbench::generateRoutingTable(5000, 3, dsts);
    auto maskedTable = table;
    for (auto &entry : maskedTable) {
        // Anonymize the prefix by anonymizing a representative
        // address and re-truncating (prefix-preservation makes the
        // choice of host bits irrelevant).
        uint32_t mask = entry.prefixLen >= 32
            ? 0xffffffffu
            : (entry.prefixLen == 0
                   ? 0u
                   : ~((1u << (32 - entry.prefixLen)) - 1));
        entry.prefix = anon.anonymize(entry.prefix) & mask;
    }

    memsim::MemoryRecorder recOrig, recMasked;
    netbench::RouteApp origApp(table, &recOrig);
    netbench::RouteApp maskedApp(maskedTable, &recMasked);
    auto s1 = netbench::profileTrace(origApp, original, recOrig);
    auto s2 = netbench::profileTrace(maskedApp, masked, recMasked);
    ASSERT_EQ(s1.size(), s2.size());
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i].accesses, s2[i].accesses) << i;
}

TEST(Anonymize, RandomSanitizationDoesNot)
{
    // Contrast: the naive sanitization destroys the walk profile.
    trace::Trace original = webTrace(75, 3.0);
    trace::Trace random = trace::randomizeAddresses(original, 5);
    std::vector<uint32_t> dsts;
    for (const auto &pkt : original)
        dsts.push_back(pkt.dstIp);
    auto table = netbench::generateRoutingTable(5000, 3, dsts);

    memsim::MemoryRecorder recOrig, recRandom;
    netbench::RouteApp appA(table, &recOrig);
    netbench::RouteApp appB(table, &recRandom);
    auto s1 = netbench::profileTrace(appA, original, recOrig);
    auto s2 = netbench::profileTrace(appB, random, recRandom);
    EXPECT_LT(memsim::meanAccesses(s2),
              memsim::meanAccesses(s1) * 0.7);
}

// ---- hybrid deflate-datasets mode -----------------------------------------

TEST(FccHybrid, CompressesFurtherAndRoundTrips)
{
    trace::Trace original = webTrace(76, 8.0);

    codec::fcc::FccTraceCompressor plain;
    codec::fcc::FccConfig hybridCfg;
    hybridCfg.deflateDatasets = true;
    codec::fcc::FccTraceCompressor hybrid(hybridCfg);

    auto plainBytes = plain.compress(original);
    auto hybridBytes = hybrid.compress(original);
    EXPECT_LT(hybridBytes.size(), plainBytes.size());

    // Either codec instance decodes either container.
    trace::Trace a = plain.decompress(hybridBytes);
    trace::Trace b = hybrid.decompress(plainBytes);
    EXPECT_EQ(a.size(), original.size());
    EXPECT_EQ(b.size(), original.size());
    // Same datasets underneath: identical reconstructions.
    EXPECT_EQ(trace::writeTsh(a),
              trace::writeTsh(plain.decompress(plainBytes)));
}

TEST(FccHybrid, RatioBelowThreePercent)
{
    trace::Trace original = webTrace(77, 12.0);
    codec::fcc::FccConfig cfg;
    cfg.deflateDatasets = true;
    codec::fcc::FccTraceCompressor hybrid(cfg);
    double ratio =
        static_cast<double>(hybrid.compress(original).size()) /
        static_cast<double>(original.size() *
                            trace::tshRecordBytes);
    EXPECT_LT(ratio, 0.03);
}
