/**
 * @file
 * Semantic-property analysis tests: exact reuse-distance computation
 * (cross-checked against a brute-force oracle), address structure,
 * working sets, flag bigrams and the end-to-end comparison scorecard.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <list>
#include <unordered_map>

#include "analysis/semantic.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "trace/transforms.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace fcc;
using fcc::trace::PacketRecord;
using fcc::trace::Trace;

namespace {

Trace
traceOfDsts(const std::vector<uint32_t> &dsts)
{
    Trace tr;
    uint64_t ts = 0;
    for (uint32_t dst : dsts) {
        PacketRecord pkt;
        pkt.timestampNs = ts += 1000;
        pkt.dstIp = dst;
        tr.add(pkt);
    }
    return tr;
}

/** Brute-force LRU stack distance oracle. */
std::vector<int64_t>
oracleDistances(const std::vector<uint32_t> &dsts)
{
    std::list<uint32_t> stack;  // front = MRU
    std::vector<int64_t> out;
    for (uint32_t dst : dsts) {
        int64_t depth = 0;
        bool found = false;
        for (auto it = stack.begin(); it != stack.end();
             ++it, ++depth) {
            if (*it == dst) {
                out.push_back(depth);
                stack.erase(it);
                found = true;
                break;
            }
        }
        if (!found)
            out.push_back(-1);  // cold
        stack.push_front(dst);
    }
    return out;
}

} // namespace

TEST(ReuseDistance, HandCrafted)
{
    // A B A : reuse distance of the 2nd A is 1 (B intervened).
    auto result = analysis::reuseDistances(traceOfDsts({1, 2, 1}));
    EXPECT_EQ(result.coldAccesses, 2u);
    ASSERT_EQ(result.distances.count(), 1u);
    EXPECT_DOUBLE_EQ(result.distances.quantile(1.0), 1.0);

    // A A : immediate reuse, distance 0.
    auto result2 = analysis::reuseDistances(traceOfDsts({5, 5}));
    EXPECT_EQ(result2.coldAccesses, 1u);
    EXPECT_DOUBLE_EQ(result2.distances.quantile(1.0), 0.0);
}

TEST(ReuseDistance, MatchesBruteForceOracle)
{
    util::Rng rng(3);
    std::vector<uint32_t> dsts;
    for (int i = 0; i < 2000; ++i)
        dsts.push_back(static_cast<uint32_t>(rng.uniformInt(0, 60)));

    auto result = analysis::reuseDistances(traceOfDsts(dsts));
    auto oracle = oracleDistances(dsts);

    std::vector<double> expected;
    size_t cold = 0;
    for (int64_t d : oracle) {
        if (d < 0)
            ++cold;
        else
            expected.push_back(static_cast<double>(d));
    }
    EXPECT_EQ(result.coldAccesses, cold);
    ASSERT_EQ(result.distances.count(), expected.size());
    // Compare the distributions exactly via quantiles.
    std::sort(expected.begin(), expected.end());
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        size_t idx = q == 0.0
            ? 0
            : std::min(expected.size() - 1,
                       static_cast<size_t>(
                           std::ceil(q * expected.size())) - 1);
        EXPECT_DOUBLE_EQ(result.distances.quantile(q),
                         expected[idx])
            << q;
    }
}

TEST(ReuseDistance, EmptyTrace)
{
    auto result = analysis::reuseDistances(Trace{});
    EXPECT_EQ(result.totalAccesses, 0u);
    EXPECT_EQ(result.coldFraction(), 0.0);
}

TEST(AddressStructure, CountsPrefixes)
{
    auto s = analysis::addressStructure(traceOfDsts(
        {trace::parseIp("10.0.0.1"), trace::parseIp("10.0.0.2"),
         trace::parseIp("10.0.1.1"), trace::parseIp("10.1.0.1"),
         trace::parseIp("11.0.0.1")}));
    EXPECT_EQ(s.distinctAddresses, 5u);
    EXPECT_EQ(s.distinctSlash8, 2u);   // 10.*, 11.*
    EXPECT_EQ(s.distinctSlash16, 3u);  // 10.0, 10.1, 11.0
    EXPECT_EQ(s.distinctSlash24, 4u);
}

TEST(AddressStructure, EntropyExtremes)
{
    // All-identical addresses: zero entropy in every bit.
    auto fixed = analysis::addressStructure(
        traceOfDsts(std::vector<uint32_t>(100, 0xc0a80101)));
    EXPECT_DOUBLE_EQ(fixed.meanBitEntropy(), 0.0);

    // Random addresses: entropy near 1 everywhere.
    util::Rng rng(4);
    std::vector<uint32_t> random(5000);
    for (auto &addr : random)
        addr = static_cast<uint32_t>(rng.next());
    auto rand = analysis::addressStructure(traceOfDsts(random));
    EXPECT_GT(rand.meanBitEntropy(), 0.99);
}

TEST(WorkingSet, Windows)
{
    // 4 packets / window of 2: windows {1,2} and {1,1} -> mean 1.5.
    EXPECT_DOUBLE_EQ(
        analysis::workingSetSize(traceOfDsts({1, 2, 1, 1}), 2), 1.5);
    EXPECT_DOUBLE_EQ(analysis::workingSetSize(Trace{}, 10), 0.0);
    EXPECT_THROW(analysis::workingSetSize(traceOfDsts({1}), 0),
                 util::Error);
}

TEST(FlagBigrams, CapturesSequences)
{
    // One flow: SYN -> SYN+ACK -> ACK gives bigrams (0,1) and (1,2)
    // ... but the two directions are distinct 5-tuples here, so
    // build a single-direction flow: SYN, ACK, FIN.
    Trace tr;
    PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;
    pkt.srcPort = 10;
    pkt.dstPort = 80;
    pkt.tcpFlags = trace::tcp_flags::Syn;
    pkt.timestampNs = 1;
    tr.add(pkt);
    pkt.tcpFlags = trace::tcp_flags::Ack;
    pkt.timestampNs = 2;
    tr.add(pkt);
    pkt.tcpFlags = trace::tcp_flags::Fin | trace::tcp_flags::Ack;
    pkt.timestampNs = 3;
    tr.add(pkt);

    auto hist = analysis::flagBigramDistribution(tr);
    // Bigrams: Syn(0)->Ack(2) = key 2; Ack(2)->FinRst(3) = key 11.
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_DOUBLE_EQ(hist[2], 0.5);
    EXPECT_DOUBLE_EQ(hist[11], 0.5);
}

TEST(TvDistance, Basics)
{
    std::map<int, double> a = {{0, 0.5}, {1, 0.5}};
    std::map<int, double> b = {{0, 0.5}, {1, 0.5}};
    EXPECT_DOUBLE_EQ(analysis::tvDistance(a, b), 0.0);
    std::map<int, double> c = {{2, 1.0}};
    EXPECT_DOUBLE_EQ(analysis::tvDistance(a, c), 1.0);
    std::map<int, double> d = {{0, 1.0}};
    EXPECT_DOUBLE_EQ(analysis::tvDistance(a, d), 0.5);
}

TEST(CompareSemantics, IdenticalTracesScoreZero)
{
    trace::WebGenConfig cfg;
    cfg.seed = 9;
    cfg.durationSec = 3.0;
    trace::WebTrafficGenerator gen(cfg);
    Trace tr = gen.generate();
    auto cmp = analysis::compareSemantics(tr, tr);
    EXPECT_DOUBLE_EQ(cmp.reuseDistanceKs, 0.0);
    EXPECT_DOUBLE_EQ(cmp.coldFractionGap, 0.0);
    EXPECT_DOUBLE_EQ(cmp.workingSetRatio, 1.0);
    EXPECT_DOUBLE_EQ(cmp.bitEntropyGap, 0.0);
    EXPECT_DOUBLE_EQ(cmp.flagBigramTv, 0.0);
}

TEST(CompareSemantics, RandomTraceDivergesMost)
{
    trace::WebGenConfig cfg;
    cfg.seed = 10;
    cfg.durationSec = 6.0;
    cfg.flowsPerSec = 80;
    trace::WebTrafficGenerator gen(cfg);
    Trace original = gen.generate();

    codec::fcc::FccConfig dirCfg;
    dirCfg.directionAwareAddresses = true;
    codec::fcc::FccTraceCompressor codec(dirCfg);
    Trace decomp = codec.decompress(codec.compress(original));
    Trace random = trace::randomizeAddresses(original, 5);

    auto cmpDecomp = analysis::compareSemantics(original, decomp);
    auto cmpRandom = analysis::compareSemantics(original, random);

    EXPECT_LT(cmpDecomp.reuseDistanceKs, cmpRandom.reuseDistanceKs);
    EXPECT_LT(cmpDecomp.coldFractionGap, cmpRandom.coldFractionGap);
    EXPECT_LT(cmpDecomp.flagBigramTv, 0.05);
    EXPECT_GT(cmpRandom.flagBigramTv, 0.3);
    // Direction-aware reconstruction keeps the working set scale.
    EXPECT_NEAR(cmpDecomp.workingSetRatio, 1.0, 0.15);
}
