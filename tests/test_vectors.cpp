/**
 * @file
 * Hand-assembled format vectors: DEFLATE streams built bit-by-bit
 * from RFC 1951 (fixed-Huffman and stored blocks), a nanosecond-magic
 * pcap, and byte-exact TSH layout checks. These pin the wire formats
 * independently of our own encoder.
 */

#include <gtest/gtest.h>

#include "codec/deflate/deflate.hpp"
#include "trace/pcap.hpp"
#include "trace/tsh.hpp"
#include "util/bitstream.hpp"

using namespace fcc;
namespace fd = fcc::codec::deflate;

// ---- hand-built DEFLATE streams ----------------------------------------

TEST(Vectors, FixedHuffmanLiteralsByHand)
{
    // BFINAL=1, BTYPE=01 (fixed), literals 'A' 'B' 'C', end-of-block.
    // Fixed code: literals 0..143 are 8 bits, 0x30 + value;
    // end-of-block (256) is 7 bits, code 0.
    util::BitWriter w;
    w.put(1, 1);  // BFINAL
    w.put(1, 2);  // BTYPE = fixed
    for (uint8_t lit : {'A', 'B', 'C'})
        w.putHuff(0x30 + lit, 8);
    w.putHuff(0, 7);  // EOB
    auto stream = w.take();

    auto out = fd::inflate(stream);
    EXPECT_EQ(out, (std::vector<uint8_t>{'A', 'B', 'C'}));
}

TEST(Vectors, FixedHuffmanBackreferenceByHand)
{
    // "abcabc": 3 literals then a match of length 3 at distance 3.
    // Length 3 -> length code 257 (7-bit code 0b0000001, no extra);
    // distance 3 -> distance code 2 (5 bits, no extra).
    util::BitWriter w;
    w.put(1, 1);
    w.put(1, 2);
    for (uint8_t lit : {'a', 'b', 'c'})
        w.putHuff(0x30 + lit, 8);
    w.putHuff(1, 7);  // length code 257
    w.putHuff(2, 5);  // distance code 2 (= distance 3)
    w.putHuff(0, 7);  // EOB
    auto stream = w.take();

    auto out = fd::inflate(stream);
    EXPECT_EQ(out, (std::vector<uint8_t>{'a', 'b', 'c', 'a', 'b',
                                         'c'}));
}

TEST(Vectors, StoredBlockByHand)
{
    // BFINAL=1, BTYPE=00, then LEN/NLEN and raw bytes.
    std::vector<uint8_t> stream = {
        0x01,        // BFINAL=1, BTYPE=00, padding
        0x05, 0x00,  // LEN = 5
        0xfa, 0xff,  // NLEN
        'h', 'e', 'l', 'l', 'o',
    };
    auto out = fd::inflate(stream);
    EXPECT_EQ(out, (std::vector<uint8_t>{'h', 'e', 'l', 'l', 'o'}));
}

TEST(Vectors, TwoBlocksByHand)
{
    // A non-final stored block followed by a final fixed block.
    util::BitWriter w;
    w.put(0, 1);  // BFINAL=0
    w.put(0, 2);  // stored
    w.alignToByte();
    w.byte(1);
    w.byte(0);
    w.byte(0xfe);
    w.byte(0xff);
    w.byte('x');
    w.put(1, 1);  // BFINAL=1
    w.put(1, 2);  // fixed
    w.putHuff(0x30 + 'y', 8);
    w.putHuff(0, 7);
    auto stream = w.take();

    auto out = fd::inflate(stream);
    EXPECT_EQ(out, (std::vector<uint8_t>{'x', 'y'}));
}

TEST(Vectors, LengthExtraBitsByHand)
{
    // Length 11 = code 265 + 1 extra bit (0); distance 1 = code 0.
    // Emit 'z' then an overlapping match of 11 -> "z" * 12.
    util::BitWriter w;
    w.put(1, 1);
    w.put(1, 2);
    w.putHuff(0x30 + 'z', 8);
    w.putHuff(9, 7);   // length code 265 (257 + 8 -> 7-bit code 9)
    w.put(0, 1);       // extra bit: length = 11
    w.putHuff(0, 5);   // distance code 0 (= distance 1)
    w.putHuff(0, 7);
    auto stream = w.take();

    auto out = fd::inflate(stream);
    EXPECT_EQ(out, std::vector<uint8_t>(12, 'z'));
}

// ---- pcap variants ----------------------------------------------------

TEST(Vectors, NanosecondPcapMagic)
{
    // Build a minimal nanosecond-magic pcap by patching our writer's
    // output: magic 0xa1b23c4d and the fraction field means ns.
    trace::Trace t;
    trace::PacketRecord pkt;
    pkt.timestampNs = 1234567891;  // 1.234567891 s
    pkt.srcIp = 1;
    pkt.dstIp = 2;
    pkt.tcpFlags = trace::tcp_flags::Ack;
    t.add(pkt);
    auto bytes = trace::writePcap(t);
    // Patch magic to nanosecond variant and the fraction to full ns.
    bytes[0] = 0x4d;
    bytes[1] = 0x3c;
    bytes[2] = 0xb2;
    bytes[3] = 0xa1;
    uint32_t ns = 234567891;
    for (int i = 0; i < 4; ++i)
        bytes[24 + 4 + i] = static_cast<uint8_t>(ns >> (8 * i));

    trace::Trace back = trace::readPcap(bytes);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].timestampNs, 1234567891u);
}

// ---- TSH byte layout ----------------------------------------------------

TEST(Vectors, TshByteLayoutIsExact)
{
    trace::Trace t;
    trace::PacketRecord pkt;
    pkt.timestampNs = 2ull * 1000000000ull + 345678000ull;  // 2.345678s
    pkt.srcIp = 0x01020304;
    pkt.dstIp = 0x05060708;
    pkt.srcPort = 0x1122;
    pkt.dstPort = 0x3344;
    pkt.seq = 0xaabbccdd;
    pkt.ack = 0x99887766;
    pkt.tcpFlags = 0x12;
    pkt.window = 0x5566;
    pkt.payloadBytes = 10;
    pkt.ipId = 0x7788;
    t.add(pkt);
    auto bytes = trace::writeTsh(t);
    ASSERT_EQ(bytes.size(), 44u);

    // Timestamp: seconds big-endian, then iface + 24-bit usec.
    EXPECT_EQ(bytes[3], 2);
    uint32_t usec = static_cast<uint32_t>(bytes[5]) << 16 |
                    static_cast<uint32_t>(bytes[6]) << 8 | bytes[7];
    EXPECT_EQ(usec, 345678u);
    // IP: version/IHL, total length at offset 10-11... check fields.
    EXPECT_EQ(bytes[8], 0x45);
    EXPECT_EQ((bytes[10] << 8) | bytes[11], 50);  // 40 + 10 payload
    EXPECT_EQ(bytes[16], 64);                     // TTL
    EXPECT_EQ(bytes[17], 6);                      // TCP
    // Addresses big-endian at 20 / 24.
    EXPECT_EQ(bytes[20], 0x01);
    EXPECT_EQ(bytes[23], 0x04);
    EXPECT_EQ(bytes[24], 0x05);
    // TCP ports at 28 / 30, flags at 41, window at 42.
    EXPECT_EQ((bytes[28] << 8) | bytes[29], 0x1122);
    EXPECT_EQ((bytes[30] << 8) | bytes[31], 0x3344);
    EXPECT_EQ(bytes[41], 0x12);
    EXPECT_EQ((bytes[42] << 8) | bytes[43], 0x5566);
}
