/**
 * @file
 * fccserve protocol and concurrency tests.
 *
 * One QueryServer instance (Unix socket, shared fixture) backs the
 * whole suite: protocol round trips through QueryClient, raw-frame
 * probes for every malformed-input path of the server's request
 * decoder (bad version, unknown opcode, truncated payload, trailing
 * bytes, oversized frame), and a multi-client stress run whose every
 * thread cross-checks its responses against locally computed
 * answers. An extra test covers TCP with an ephemeral port. The
 * whole file is a no-op on platforms without the server.
 */

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "query/catalog.hpp"
#include "query/expr.hpp"
#include "query/server.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/io.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

using fcc::test::tempPath;

/**
 * Two small sealed archives, a catalog over them, and one running
 * QueryServer on a Unix socket — shared by every test (the server
 * is immutable state; concurrent tests are exactly the production
 * workload).
 */
struct ServerFixture
{
    std::string dir = tempPath("server_dir");
    std::string socketPath = tempPath("fccserve_test.sock");
    fccc::FccConfig cfg;
    std::unique_ptr<query::ArchiveCatalog> catalog;
    std::unique_ptr<query::QueryServer> server;
    std::thread thread;

    ServerFixture()
    {
        std::filesystem::create_directories(dir);
        cfg.container = fccc::ContainerFormat::Fcc3;
        cfg.chunkRecords = 64;
        cfg.threads = 1;
        fccc::FccConfig idxCfg = cfg;
        idxCfg.index = true;
        for (int i = 0; i < 2; ++i) {
            trace::WebGenConfig gen;
            gen.seed = 7100 + static_cast<uint64_t>(i);
            gen.durationSec = 3.0;
            gen.flowsPerSec = 40.0;
            trace::Trace tr = trace::WebTrafficGenerator(gen).generate();
            std::string tsh = tempPath(
                ("server_" + std::to_string(i) + ".tsh").c_str());
            trace::writeTshFile(tr, tsh);
            fccc::compressTraceFile(
                tsh, dir + "/arch" + std::to_string(i) + ".fcc",
                idxCfg);
            std::remove(tsh.c_str());
        }
        catalog = std::make_unique<query::ArchiveCatalog>(dir, cfg);
        std::remove(socketPath.c_str());
        query::ServerConfig serverCfg;
        serverCfg.threads = 4;
        server = std::make_unique<query::QueryServer>(
            *catalog,
            util::SocketEndpoint::parse("unix:" + socketPath),
            serverCfg);
        thread = std::thread([this] { server->serve(); });
    }

    ~ServerFixture()
    {
        server->stop();
        thread.join();
        server.reset();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    util::SocketEndpoint
    endpoint() const
    {
        return server->endpoint();
    }
};

ServerFixture &
fixture()
{
    static ServerFixture f;
    return f;
}

std::vector<uint8_t>
tshBytes(const std::vector<trace::PacketRecord> &packets)
{
    std::vector<uint8_t> bytes;
    for (const trace::PacketRecord &p : packets)
        trace::encodeTshRecord(p, bytes);
    return bytes;
}

/** What the server must answer for @p exprText, computed locally. */
std::vector<trace::PacketRecord>
localAnswer(const ServerFixture &f, const std::string &exprText)
{
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    f.catalog->run(query::parseExpr(exprText), sink);
    return out.packets();
}

/**
 * A raw protocol peer: hand-built frames, no QueryClient
 * convenience — the tool for probing malformed input.
 */
struct RawPeer
{
    util::SocketFd fd;

    explicit RawPeer(const util::SocketEndpoint &endpoint)
        : fd(util::connectSocket(endpoint))
    {
    }

    void
    sendFrame(std::span<const uint8_t> body)
    {
        uint8_t len[4] = {
            static_cast<uint8_t>(body.size()),
            static_cast<uint8_t>(body.size() >> 8),
            static_cast<uint8_t>(body.size() >> 16),
            static_cast<uint8_t>(body.size() >> 24),
        };
        util::sendAll(fd.get(), len);
        util::sendAll(fd.get(), body);
    }

    /** @returns false when the server closed the connection. */
    bool
    recvFrame(std::vector<uint8_t> &body)
    {
        uint8_t len[4];
        if (util::recvFully(fd.get(), len, sizeof len) == 0)
            return false;
        uint64_t n = static_cast<uint64_t>(len[0]) |
                     static_cast<uint64_t>(len[1]) << 8 |
                     static_cast<uint64_t>(len[2]) << 16 |
                     static_cast<uint64_t>(len[3]) << 24;
        body.resize(static_cast<size_t>(n));
        if (n > 0)
            util::recvFully(fd.get(), body.data(), body.size());
        return true;
    }

    /** Send @p body, expect a response, return its status byte. */
    query::Status
    statusOf(std::span<const uint8_t> body)
    {
        sendFrame(body);
        std::vector<uint8_t> response;
        EXPECT_TRUE(recvFrame(response));
        EXPECT_GE(response.size(), 2u);
        EXPECT_EQ(response[0], query::protocolVersion);
        return static_cast<query::Status>(response[1]);
    }
};

} // namespace

TEST(Server, PingAndListArchives)
{
    ServerFixture &f = fixture();
    query::QueryClient client(f.endpoint());
    client.ping();

    std::vector<query::ArchiveInfo> archives =
        client.listArchives();
    ASSERT_EQ(archives.size(), 2u);
    for (size_t i = 0; i < archives.size(); ++i) {
        const query::FccArchive &local = f.catalog->archive(i);
        EXPECT_EQ(archives[i].path, local.path());
        EXPECT_TRUE(archives[i].hasIndex);
        EXPECT_EQ(archives[i].fileBytes, local.fileBytes());
        EXPECT_GT(archives[i].chunks, 0u);
    }
}

TEST(Server, QueryBytesIdenticalToLocalRun)
{
    ServerFixture &f = fixture();
    query::QueryClient client(f.endpoint());
    const std::string expr =
        "server in 128.0.0.0/8 or flow.packets >= 20";

    query::QueryResponse resp = client.query(expr);
    std::vector<trace::PacketRecord> want = localAnswer(f, expr);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(resp.packets, want.size());
    EXPECT_EQ(tshBytes(resp.records), tshBytes(want));
    EXPECT_EQ(resp.stats.packetsMatched, want.size());
    EXPECT_EQ(resp.stats.archives, 2u);

    // Count-only: same totals, no record payload.
    query::QueryResponse count =
        client.query(expr, /*countOnly=*/true);
    EXPECT_EQ(count.packets, want.size());
    EXPECT_TRUE(count.records.empty());

    // Forced full decode: same bytes through the other path.
    query::QueryResponse full = client.query(
        expr, /*countOnly=*/false, /*forceFullDecode=*/true);
    EXPECT_EQ(tshBytes(full.records), tshBytes(want));
    EXPECT_EQ(full.stats.chunksDecoded, full.stats.chunksTotal);
}

TEST(Server, AggregateMatchesLocalRun)
{
    ServerFixture &f = fixture();
    query::QueryClient client(f.endpoint());

    query::AggregateRequest req;
    req.kind = query::AggregateKind::TopTalkers;
    req.topK = 5;
    req.expr = query::parseExpr("flow.packets >= 2");
    query::AggregateResult want = f.catalog->aggregate(req);

    query::AggregateResult got = client.aggregate(
        req.kind, req.topK, "flow.packets >= 2");
    EXPECT_EQ(got.stats.usedIndex, want.stats.usedIndex);
    EXPECT_EQ(got.stats.flowsAggregated,
              want.stats.flowsAggregated);
    EXPECT_EQ(got.stats.bytesTouched, want.stats.bytesTouched);
    ASSERT_EQ(got.servers.size(), want.servers.size());
    for (size_t i = 0; i < got.servers.size(); ++i) {
        EXPECT_EQ(got.servers[i].serverIp,
                  want.servers[i].serverIp);
        EXPECT_EQ(got.servers[i].flows, want.servers[i].flows);
        EXPECT_EQ(got.servers[i].packets,
                  want.servers[i].packets);
        EXPECT_EQ(got.servers[i].wireBytes,
                  want.servers[i].wireBytes);
    }
    EXPECT_EQ(got.histogram, want.histogram);
}

TEST(Server, BadExpressionIsBadRequestAndConnectionSurvives)
{
    ServerFixture &f = fixture();
    query::QueryClient client(f.endpoint());
    EXPECT_THROW(client.query("server in"), util::Error);
    try {
        client.query("server in");
    } catch (const util::Error &e) {
        EXPECT_NE(std::string(e.what()).find("server: "),
                  std::string::npos);
    }
    // The error was answered in-band: the same connection keeps
    // working.
    client.ping();
    EXPECT_FALSE(localAnswer(f, "all").empty());
}

TEST(Server, MalformedFramesGetErrorStatusNotCrash)
{
    ServerFixture &f = fixture();
    RawPeer peer(f.endpoint());

    // Wrong protocol version.
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{0x7f, 0x00}),
              query::Status::BadRequest);
    // Unknown opcode.
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{
                  query::protocolVersion, 0x09}),
              query::Status::BadRequest);
    // Truncated query payload (flags byte missing).
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{
                  query::protocolVersion, 0x02}),
              query::Status::BadRequest);
    // Trailing bytes after a ping.
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{
                  query::protocolVersion, 0x00, 0xaa}),
              query::Status::BadRequest);
    // Unknown aggregate kind (kind=9, topK=1, expr "all").
    {
        util::ByteWriter w;
        w.u8(query::protocolVersion);
        w.u8(static_cast<uint8_t>(query::Opcode::Aggregate));
        w.u8(9);
        w.u32(1);
        const char *text = "all";
        w.blob(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(text), 3));
        EXPECT_EQ(peer.statusOf(w.take()),
                  query::Status::BadRequest);
    }
    // An empty frame (no version byte at all).
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{}),
              query::Status::BadRequest);
    // The connection survived every error above.
    EXPECT_EQ(peer.statusOf(std::vector<uint8_t>{
                  query::protocolVersion, 0x00}),
              query::Status::Ok);
}

TEST(Server, OversizedFrameClosesConnection)
{
    ServerFixture &f = fixture();
    RawPeer peer(f.endpoint());
    // Announce a frame larger than ServerConfig::maxRequestBytes;
    // the server cannot trust anything that follows, so it hangs
    // up instead of answering.
    uint8_t len[4] = {0xff, 0xff, 0xff, 0xff};
    util::sendAll(peer.fd.get(), len);
    std::vector<uint8_t> response;
    EXPECT_FALSE(peer.recvFrame(response));

    // A fresh connection is unaffected.
    query::QueryClient client(f.endpoint());
    client.ping();
}

TEST(Server, MidFrameDisconnectLeavesServerServing)
{
    ServerFixture &f = fixture();
    {
        RawPeer peer(f.endpoint());
        // Announce 100 bytes, send 3, vanish.
        uint8_t len[4] = {100, 0, 0, 0};
        util::sendAll(peer.fd.get(), len);
        uint8_t partial[3] = {1, 2, 3};
        util::sendAll(peer.fd.get(), partial);
    }
    query::QueryClient client(f.endpoint());
    client.ping();
}

TEST(Server, ConcurrentClientsGetConsistentAnswers)
{
    ServerFixture &f = fixture();
    const std::string expr =
        "server in 128.0.0.0/8 or flow.packets >= 10";
    const std::vector<uint8_t> want = tshBytes(localAnswer(f, expr));
    ASSERT_FALSE(want.empty());

    constexpr int kClients = 8;
    constexpr int kRequests = 12;
    std::atomic<int> failures{0};
    uint64_t before = f.server->requestsServed();

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                query::QueryClient client(f.endpoint());
                for (int i = 0; i < kRequests; ++i) {
                    switch ((c + i) % 3) {
                    case 0: {
                        query::QueryResponse resp =
                            client.query(expr);
                        if (tshBytes(resp.records) != want)
                            ++failures;
                        break;
                    }
                    case 1: {
                        query::QueryResponse resp = client.query(
                            expr, /*countOnly=*/true);
                        if (resp.packets * trace::tshRecordBytes !=
                            want.size())
                            ++failures;
                        break;
                    }
                    default: {
                        query::AggregateResult agg =
                            client.aggregate(
                                query::AggregateKind::FlowCounts,
                                10, expr);
                        if (agg.servers.empty())
                            ++failures;
                        break;
                    }
                    }
                }
            } catch (const std::exception &) {
                ++failures;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(f.server->requestsServed() - before,
              uint64_t{kClients} * kRequests);
}

TEST(Server, TcpEphemeralPortRoundTrip)
{
    ServerFixture &f = fixture();
    query::QueryServer server(
        *f.catalog, util::SocketEndpoint::parse("tcp:127.0.0.1:0"));
    EXPECT_NE(server.endpoint().port, 0);
    std::thread t([&] { server.serve(); });
    {
        query::QueryClient client(server.endpoint());
        client.ping();
        EXPECT_EQ(client.listArchives().size(), 2u);
    }
    server.stop();
    t.join();
}

#else // !(__unix__ || __APPLE__)

TEST(Server, SkippedOnThisPlatform)
{
    GTEST_SKIP() << "fccserve requires POSIX sockets";
}

#endif

