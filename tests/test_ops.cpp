/**
 * @file
 * Trace-operation tests: merge ordering/stability, filtering with
 * composed predicates, and timestamp rebasing.
 */

#include <gtest/gtest.h>

#include "trace/ops.hpp"
#include "trace/scenario_gen.hpp"
#include "trace/transforms.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;
using trace::PacketRecord;
using trace::Trace;

namespace {

PacketRecord
pktAt(uint64_t tUs, uint32_t dst = 0, uint16_t dstPort = 80)
{
    PacketRecord pkt;
    pkt.timestampNs = tUs * 1000;
    pkt.dstIp = dst;
    pkt.dstPort = dstPort;
    return pkt;
}

/** Small adversarial trace (trace/scenario_gen.hpp). */
Trace
scenarioTrace(trace::ScenarioKind kind, uint64_t seed,
              uint32_t flows)
{
    trace::ScenarioConfig cfg = trace::scenarioDefaults(kind, seed);
    cfg.durationSec = 2.0;
    cfg.flows = flows;
    trace::ScenarioGenerator gen(cfg);
    return gen.generate();
}

} // namespace

TEST(Ops, MergeInterleavesByTime)
{
    Trace a, b;
    a.add(pktAt(10));
    a.add(pktAt(30));
    b.add(pktAt(20));
    b.add(pktAt(40));
    Trace m = trace::merge(a, b);
    ASSERT_EQ(m.size(), 4u);
    EXPECT_TRUE(m.isTimeOrdered());
    EXPECT_EQ(m[0].timestampUs(), 10u);
    EXPECT_EQ(m[3].timestampUs(), 40u);
}

TEST(Ops, MergeIsStableOnTies)
{
    Trace a, b;
    a.add(pktAt(10, /*dst=*/1));
    b.add(pktAt(10, /*dst=*/2));
    Trace m = trace::merge(a, b);
    EXPECT_EQ(m[0].dstIp, 1u);
    EXPECT_EQ(m[1].dstIp, 2u);
}

TEST(Ops, MergeEmptySides)
{
    Trace a;
    a.add(pktAt(5));
    EXPECT_EQ(trace::merge(a, Trace{}).size(), 1u);
    EXPECT_EQ(trace::merge(Trace{}, a).size(), 1u);
    EXPECT_EQ(trace::merge(Trace{}, Trace{}).size(), 0u);
}

TEST(Ops, MergeRejectsUnordered)
{
    Trace bad;
    bad.add(pktAt(10));
    bad.add(pktAt(5));
    EXPECT_THROW(trace::merge(bad, Trace{}), util::Error);
}

TEST(Ops, MergeTwoWorkloads)
{
    trace::WebGenConfig cfg;
    cfg.seed = 1;
    cfg.durationSec = 2.0;
    trace::WebTrafficGenerator genA(cfg);
    cfg.seed = 2;
    trace::WebTrafficGenerator genB(cfg);
    Trace a = genA.generate();
    Trace b = genB.generate();
    Trace m = trace::merge(a, b);
    EXPECT_EQ(m.size(), a.size() + b.size());
    EXPECT_TRUE(m.isTimeOrdered());
}

TEST(Ops, FilterByPort)
{
    Trace t;
    t.add(pktAt(1, 0, 80));
    t.add(pktAt(2, 0, 443));
    t.add(pktAt(3, 0, 80));
    Trace web = trace::filter(t, trace::portIs(80));
    EXPECT_EQ(web.size(), 2u);
}

TEST(Ops, FilterByPrefix)
{
    Trace t;
    t.add(pktAt(1, trace::parseIp("10.1.2.3")));
    t.add(pktAt(2, trace::parseIp("10.1.9.9")));
    t.add(pktAt(3, trace::parseIp("10.2.0.1")));
    auto inNet =
        trace::dstInPrefix(trace::parseIp("10.1.0.0"), 16);
    EXPECT_EQ(trace::filter(t, inNet).size(), 2u);
    // /0 matches everything; /32 only the exact host.
    EXPECT_EQ(trace::filter(t, trace::dstInPrefix(0, 0)).size(), 3u);
    EXPECT_EQ(trace::filter(
                  t, trace::dstInPrefix(
                         trace::parseIp("10.2.0.1"), 32))
                  .size(),
              1u);
}

TEST(Ops, FilterByTimeWindow)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(pktAt(static_cast<uint64_t>(i) * 1000000));  // 1s apart
    auto window = trace::timeWindow(t, 2.0, 5.0);
    EXPECT_EQ(trace::filter(t, window).size(), 3u);
}

TEST(Ops, ComposedPredicates)
{
    Trace t;
    t.add(pktAt(1, trace::parseIp("10.0.0.1"), 80));
    t.add(pktAt(2, trace::parseIp("10.0.0.1"), 443));
    t.add(pktAt(3, trace::parseIp("11.0.0.1"), 80));

    auto inTen = trace::dstInPrefix(trace::parseIp("10.0.0.0"), 8);
    EXPECT_EQ(trace::filter(
                  t, trace::allOf(inTen, trace::portIs(80)))
                  .size(),
              1u);
    EXPECT_EQ(trace::filter(
                  t, trace::anyOf(inTen, trace::portIs(80)))
                  .size(),
              3u);
    EXPECT_EQ(trace::filter(t, trace::notOf(inTen)).size(), 1u);
}

TEST(Ops, RebaseTime)
{
    Trace t;
    t.add(pktAt(1000));
    t.add(pktAt(1500));
    Trace shifted = trace::rebaseTime(t, 0);
    EXPECT_EQ(shifted[0].timestampNs, 0u);
    EXPECT_EQ(shifted[1].timestampNs, 500000u);
    EXPECT_EQ(trace::rebaseTime(Trace{}, 5).size(), 0u);
}

TEST(Ops, FilterRejectsEmptyPredicate)
{
    EXPECT_THROW(trace::filter(Trace{}, trace::PacketPredicate{}),
                 util::Error);
}

// ---- adversarial (reordered / lossy) input ---------------------------------
//
// The operations were only ever exercised on clean web_gen traffic;
// the scenario generators provide captures with scrambled direction
// patterns (Reordering) and duplicate ACKs plus retransmitted
// segments (LossStorm), which is what real damaged captures look
// like.

TEST(OpsAdversarial, MergeReorderedAndLossyWorkloads)
{
    Trace reordered =
        scenarioTrace(trace::ScenarioKind::Reordering, 3, 60);
    Trace lossy =
        scenarioTrace(trace::ScenarioKind::LossStorm, 4, 30);
    ASSERT_TRUE(reordered.isTimeOrdered());
    ASSERT_TRUE(lossy.isTimeOrdered());

    Trace m = trace::merge(reordered, lossy);
    EXPECT_EQ(m.size(), reordered.size() + lossy.size());
    EXPECT_TRUE(m.isTimeOrdered());

    // Merging loses no packets: per-destination counts add up.
    auto countDst = [](const Trace &t, uint32_t dst) {
        uint64_t n = 0;
        for (const auto &pkt : t.packets())
            n += pkt.dstIp == dst;
        return n;
    };
    uint32_t probe = reordered.packets().front().dstIp;
    EXPECT_EQ(countDst(m, probe),
              countDst(reordered, probe) + countDst(lossy, probe));
}

TEST(OpsAdversarial, FilterPartitionsLossyTrace)
{
    Trace lossy =
        scenarioTrace(trace::ScenarioKind::LossStorm, 7, 40);
    Trace web = trace::filter(lossy, trace::portIs(80));
    Trace rest =
        trace::filter(lossy, trace::notOf(trace::portIs(80)));
    EXPECT_EQ(web.size() + rest.size(), lossy.size());
    // Every LossStorm connection serves port 80, including the
    // duplicate ACKs and retransmissions.
    EXPECT_EQ(web.size(), lossy.size());
    for (const auto &pkt : web.packets())
        EXPECT_TRUE(pkt.srcPort == 80 || pkt.dstPort == 80);
}

TEST(OpsAdversarial, TimeWindowOnReorderedTrace)
{
    Trace reordered =
        scenarioTrace(trace::ScenarioKind::Reordering, 11, 80);
    auto window = trace::timeWindow(reordered, 0.5, 1.5);
    Trace mid = trace::filter(reordered, window);
    EXPECT_GT(mid.size(), 0u);
    EXPECT_LT(mid.size(), reordered.size());
    uint64_t t0 = reordered.packets().front().timestampNs;
    for (const auto &pkt : mid.packets()) {
        EXPECT_GE(pkt.timestampNs, t0 + 500000000ull);
        EXPECT_LT(pkt.timestampNs, t0 + 1500000000ull);
    }
}

TEST(OpsAdversarial, RebasePreservesReorderedDeltas)
{
    Trace reordered =
        scenarioTrace(trace::ScenarioKind::Reordering, 13, 50);
    Trace shifted = trace::rebaseTime(reordered, 0);
    ASSERT_EQ(shifted.size(), reordered.size());
    EXPECT_EQ(shifted.packets().front().timestampNs, 0u);
    EXPECT_TRUE(shifted.isTimeOrdered());
    uint64_t t0 = reordered.packets().front().timestampNs;
    for (size_t i = 0; i < reordered.size(); ++i)
        EXPECT_EQ(shifted.packets()[i].timestampNs,
                  reordered.packets()[i].timestampNs - t0);
}

TEST(TransformsAdversarial, RandomizeAddressesOnLossyTrace)
{
    Trace lossy =
        scenarioTrace(trace::ScenarioKind::LossStorm, 17, 30);
    Trace randomized = trace::randomizeAddresses(lossy, 99);
    ASSERT_EQ(randomized.size(), lossy.size());
    size_t dstChanged = 0;
    for (size_t i = 0; i < lossy.size(); ++i) {
        const auto &a = lossy.packets()[i];
        const auto &b = randomized.packets()[i];
        // Timing and every non-destination field survive.
        EXPECT_EQ(b.timestampNs, a.timestampNs);
        EXPECT_EQ(b.srcIp, a.srcIp);
        EXPECT_EQ(b.srcPort, a.srcPort);
        EXPECT_EQ(b.dstPort, a.dstPort);
        EXPECT_EQ(b.tcpFlags, a.tcpFlags);
        EXPECT_EQ(b.payloadBytes, a.payloadBytes);
        dstChanged += b.dstIp != a.dstIp;
    }
    // Uniformly random destinations: nearly all must move.
    EXPECT_GT(dstChanged, lossy.size() * 9 / 10);

    // Deterministic per seed.
    Trace again = trace::randomizeAddresses(lossy, 99);
    for (size_t i = 0; i < lossy.size(); ++i)
        EXPECT_EQ(again.packets()[i].dstIp,
                  randomized.packets()[i].dstIp);
}
