/**
 * @file
 * Trace-operation tests: merge ordering/stability, filtering with
 * composed predicates, and timestamp rebasing.
 */

#include <gtest/gtest.h>

#include "trace/ops.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;
using trace::PacketRecord;
using trace::Trace;

namespace {

PacketRecord
pktAt(uint64_t tUs, uint32_t dst = 0, uint16_t dstPort = 80)
{
    PacketRecord pkt;
    pkt.timestampNs = tUs * 1000;
    pkt.dstIp = dst;
    pkt.dstPort = dstPort;
    return pkt;
}

} // namespace

TEST(Ops, MergeInterleavesByTime)
{
    Trace a, b;
    a.add(pktAt(10));
    a.add(pktAt(30));
    b.add(pktAt(20));
    b.add(pktAt(40));
    Trace m = trace::merge(a, b);
    ASSERT_EQ(m.size(), 4u);
    EXPECT_TRUE(m.isTimeOrdered());
    EXPECT_EQ(m[0].timestampUs(), 10u);
    EXPECT_EQ(m[3].timestampUs(), 40u);
}

TEST(Ops, MergeIsStableOnTies)
{
    Trace a, b;
    a.add(pktAt(10, /*dst=*/1));
    b.add(pktAt(10, /*dst=*/2));
    Trace m = trace::merge(a, b);
    EXPECT_EQ(m[0].dstIp, 1u);
    EXPECT_EQ(m[1].dstIp, 2u);
}

TEST(Ops, MergeEmptySides)
{
    Trace a;
    a.add(pktAt(5));
    EXPECT_EQ(trace::merge(a, Trace{}).size(), 1u);
    EXPECT_EQ(trace::merge(Trace{}, a).size(), 1u);
    EXPECT_EQ(trace::merge(Trace{}, Trace{}).size(), 0u);
}

TEST(Ops, MergeRejectsUnordered)
{
    Trace bad;
    bad.add(pktAt(10));
    bad.add(pktAt(5));
    EXPECT_THROW(trace::merge(bad, Trace{}), util::Error);
}

TEST(Ops, MergeTwoWorkloads)
{
    trace::WebGenConfig cfg;
    cfg.seed = 1;
    cfg.durationSec = 2.0;
    trace::WebTrafficGenerator genA(cfg);
    cfg.seed = 2;
    trace::WebTrafficGenerator genB(cfg);
    Trace a = genA.generate();
    Trace b = genB.generate();
    Trace m = trace::merge(a, b);
    EXPECT_EQ(m.size(), a.size() + b.size());
    EXPECT_TRUE(m.isTimeOrdered());
}

TEST(Ops, FilterByPort)
{
    Trace t;
    t.add(pktAt(1, 0, 80));
    t.add(pktAt(2, 0, 443));
    t.add(pktAt(3, 0, 80));
    Trace web = trace::filter(t, trace::portIs(80));
    EXPECT_EQ(web.size(), 2u);
}

TEST(Ops, FilterByPrefix)
{
    Trace t;
    t.add(pktAt(1, trace::parseIp("10.1.2.3")));
    t.add(pktAt(2, trace::parseIp("10.1.9.9")));
    t.add(pktAt(3, trace::parseIp("10.2.0.1")));
    auto inNet =
        trace::dstInPrefix(trace::parseIp("10.1.0.0"), 16);
    EXPECT_EQ(trace::filter(t, inNet).size(), 2u);
    // /0 matches everything; /32 only the exact host.
    EXPECT_EQ(trace::filter(t, trace::dstInPrefix(0, 0)).size(), 3u);
    EXPECT_EQ(trace::filter(
                  t, trace::dstInPrefix(
                         trace::parseIp("10.2.0.1"), 32))
                  .size(),
              1u);
}

TEST(Ops, FilterByTimeWindow)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(pktAt(static_cast<uint64_t>(i) * 1000000));  // 1s apart
    auto window = trace::timeWindow(t, 2.0, 5.0);
    EXPECT_EQ(trace::filter(t, window).size(), 3u);
}

TEST(Ops, ComposedPredicates)
{
    Trace t;
    t.add(pktAt(1, trace::parseIp("10.0.0.1"), 80));
    t.add(pktAt(2, trace::parseIp("10.0.0.1"), 443));
    t.add(pktAt(3, trace::parseIp("11.0.0.1"), 80));

    auto inTen = trace::dstInPrefix(trace::parseIp("10.0.0.0"), 8);
    EXPECT_EQ(trace::filter(
                  t, trace::allOf(inTen, trace::portIs(80)))
                  .size(),
              1u);
    EXPECT_EQ(trace::filter(
                  t, trace::anyOf(inTen, trace::portIs(80)))
                  .size(),
              3u);
    EXPECT_EQ(trace::filter(t, trace::notOf(inTen)).size(), 1u);
}

TEST(Ops, RebaseTime)
{
    Trace t;
    t.add(pktAt(1000));
    t.add(pktAt(1500));
    Trace shifted = trace::rebaseTime(t, 0);
    EXPECT_EQ(shifted[0].timestampNs, 0u);
    EXPECT_EQ(shifted[1].timestampNs, 500000u);
    EXPECT_EQ(trace::rebaseTime(Trace{}, 5).size(), 0u);
}

TEST(Ops, FilterRejectsEmptyPredicate)
{
    EXPECT_THROW(trace::filter(Trace{}, trace::PacketPredicate{}),
                 util::Error);
}
