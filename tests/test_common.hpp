/**
 * @file
 * Shared test scaffolding. The one thing every suite needs and each
 * used to hand-roll: scratch paths that cannot collide across test
 * binaries. ctest runs the suites concurrently and gtest's
 * TempDir() is one directory per machine, so two binaries writing
 * "out.fcc" there race — historically dodged by choosing unique
 * file names by hand (and commented as such in test_stream).
 * tempPath()/tempDir() give each *binary* its own subdirectory, so
 * suites are free to use natural names again.
 */
#pragma once

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace fcc::test {

/**
 * This binary's private scratch directory under gtest's TempDir(),
 * wiped and re-created on first use. Named after the executable
 * (unique per suite: test_io, test_query, ...) so concurrent test
 * binaries never share paths; the pid fallback covers platforms
 * without program_invocation_short_name.
 */
inline const std::string &
scratchDir()
{
    static const std::string dir = [] {
#ifdef __GLIBC__
        std::string tag = program_invocation_short_name;
#else
        std::string tag = "pid" + std::to_string(::getpid());
#endif
        std::string d = ::testing::TempDir() + "/" + tag;
        std::filesystem::remove_all(d);
        std::filesystem::create_directories(d);
        return d;
    }();
    return dir;
}

/** A file path inside scratchDir(); nothing is created. */
inline std::string
tempPath(const std::string &name)
{
    return scratchDir() + "/" + name;
}

/** A fresh empty directory inside scratchDir(). */
inline std::string
tempDir(const std::string &name)
{
    std::string path = tempPath(name);
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
}

} // namespace fcc::test
