/**
 * @file
 * Unit tests of the util substrate: byte/bit I/O, checksums, RNG,
 * distributions and statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/bitstream.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace fcc::util;

// ---- bytes -------------------------------------------------------------

TEST(Bytes, PrimitivesRoundTrip)
{
    ByteWriter w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    auto buf = w.take();
    ASSERT_EQ(buf.size(), 1u + 2 + 4 + 8);

    ByteReader r(buf);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout)
{
    ByteWriter w;
    w.u32(0x01020304);
    auto buf = w.take();
    EXPECT_EQ(buf[0], 0x04);
    EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, VarintBoundaries)
{
    for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                       0xffffffffull, ~0ull}) {
        ByteWriter w;
        w.varint(v);
        auto buf = w.take();
        ByteReader r(buf);
        EXPECT_EQ(r.varint(), v) << v;
        EXPECT_TRUE(r.exhausted());
    }
}

TEST(Bytes, VarintSizes)
{
    auto size = [](uint64_t v) {
        ByteWriter w;
        w.varint(v);
        return w.size();
    };
    EXPECT_EQ(size(0), 1u);
    EXPECT_EQ(size(127), 1u);
    EXPECT_EQ(size(128), 2u);
    EXPECT_EQ(size(16383), 2u);
    EXPECT_EQ(size(~0ull), 10u);
}

TEST(Bytes, ReaderThrowsOnTruncation)
{
    ByteWriter w;
    w.u16(7);
    auto buf = w.take();
    ByteReader r(buf);
    r.u8();
    EXPECT_THROW(r.u16(), Error);
}

TEST(Bytes, VarintRejectsOverlong)
{
    // 11 continuation bytes cannot encode a 64-bit value.
    std::vector<uint8_t> bad(11, 0x80);
    ByteReader r(bad);
    EXPECT_THROW(r.varint(), Error);
}

TEST(Bytes, BlobRoundTrip)
{
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    ByteWriter w;
    w.blob(payload);
    auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.blob(), payload);
}

TEST(Bytes, SkipValidatesBounds)
{
    std::vector<uint8_t> buf(4, 0);
    ByteReader r(buf);
    r.skip(4);
    EXPECT_THROW(r.skip(1), Error);
}

// ---- bitstream -----------------------------------------------------------

TEST(Bitstream, LsbFirstPacking)
{
    BitWriter w;
    w.put(0b1, 1);
    w.put(0b01, 2);
    w.put(0b10101, 5);
    auto buf = w.take();
    ASSERT_EQ(buf.size(), 1u);
    // bit0=1, bits1-2=01, bits3-7=10101 -> 1010_1011
    EXPECT_EQ(buf[0], 0xab);
}

TEST(Bitstream, WriterReaderRoundTrip)
{
    BitWriter w;
    for (int i = 0; i < 1000; ++i)
        w.put(static_cast<uint32_t>(i * 2654435761u) &
                  ((1u << (i % 24 + 1)) - 1),
              i % 24 + 1);
    auto buf = w.take();
    BitReader r(buf);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(r.get(i % 24 + 1),
                  (static_cast<uint32_t>(i * 2654435761u) &
                   ((1u << (i % 24 + 1)) - 1)))
            << i;
}

TEST(Bitstream, HuffCodeBitOrderMatchesRfc)
{
    // RFC 1951: Huffman codes are packed starting with the MSB of
    // the code. Code 0b011 (3 bits) must appear as bits 0,1,2 = 0,1,1.
    BitWriter w;
    w.putHuff(0b011, 3);
    auto buf = w.take();
    EXPECT_EQ(buf[0] & 0x7, 0b110);
}

TEST(Bitstream, AlignToByte)
{
    BitWriter w;
    w.put(1, 3);
    w.alignToByte();
    w.byte(0x42);
    auto buf = w.take();
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf[1], 0x42);

    BitReader r(buf);
    EXPECT_EQ(r.get(3), 1u);
    r.alignToByte();
    EXPECT_EQ(r.byte(), 0x42);
}

TEST(Bitstream, ReaderThrowsPastEnd)
{
    std::vector<uint8_t> one = {0xff};
    BitReader r(one);
    r.get(8);
    EXPECT_THROW(r.get(1), Error);
}

// ---- checksums -----------------------------------------------------------

TEST(Checksum, Crc32KnownVectors)
{
    // Standard test vector: "123456789" -> 0xCBF43926.
    const char *digits = "123456789";
    EXPECT_EQ(Crc32::of({reinterpret_cast<const uint8_t *>(digits), 9}),
              0xcbf43926u);
    EXPECT_EQ(Crc32::of({}), 0u);
}

TEST(Checksum, Adler32KnownVectors)
{
    // RFC 1950: Adler-32 of "Wikipedia" is 0x11E60398.
    const char *word = "Wikipedia";
    EXPECT_EQ(Adler32::of({reinterpret_cast<const uint8_t *>(word), 9}),
              0x11e60398u);
    EXPECT_EQ(Adler32::of({}), 1u);
}

TEST(Checksum, IncrementalEqualsOneShot)
{
    std::vector<uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31);

    Crc32 crc;
    Adler32 adler;
    crc.update({data.data(), 3000});
    crc.update({data.data() + 3000, data.size() - 3000});
    adler.update({data.data(), 7001});
    adler.update({data.data() + 7001, data.size() - 7001});
    EXPECT_EQ(crc.value(), Crc32::of(data));
    EXPECT_EQ(adler.value(), Adler32::of(data));
}

// ---- rng -----------------------------------------------------------------

TEST(Rng, DeterministicBySeed)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng d(8);
    bool anyDiff = false;
    Rng e(7);
    for (int i = 0; i < 100; ++i)
        anyDiff |= d.next() != e.next();
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsRange)
{
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng rng(3);
    std::vector<int> counts(8, 0);
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(0, 7)];
    for (int count : counts)
        EXPECT_NEAR(count, draws / 8, draws / 8 * 0.1);
}

TEST(Rng, MeanNearHalf)
{
    Rng rng(4);
    double sum = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

// ---- distributions ----------------------------------------------------

TEST(Distributions, ExponentialMean)
{
    Rng rng(5);
    Exponential dist(4.0);
    double sum = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        sum += dist.sample(rng);
    EXPECT_NEAR(sum / draws, 0.25, 0.01);
}

TEST(Distributions, ExponentialRejectsBadRate)
{
    EXPECT_THROW(Exponential(0.0), Error);
    EXPECT_THROW(Exponential(-1.0), Error);
}

TEST(Distributions, BoundedParetoStaysInRange)
{
    Rng rng(6);
    BoundedPareto dist(1.2, 10.0, 1000.0);
    for (int i = 0; i < 50000; ++i) {
        double x = dist.sample(rng);
        EXPECT_GE(x, 10.0);
        EXPECT_LE(x, 1000.0);
    }
}

TEST(Distributions, BoundedParetoIsHeavyTailed)
{
    Rng rng(7);
    BoundedPareto dist(1.1, 1.0, 10000.0);
    int below10 = 0, above1000 = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        double x = dist.sample(rng);
        below10 += x < 10.0;
        above1000 += x > 1000.0;
    }
    EXPECT_GT(below10, draws * 8 / 10);  // mass at the head
    EXPECT_GT(above1000, 10);            // but a real tail
}

TEST(Distributions, LogNormalMedian)
{
    Rng rng(8);
    auto dist = LogNormal::fromMedian(0.08, 0.5);
    std::vector<double> sample(50001);
    for (auto &x : sample)
        x = dist.sample(rng);
    std::sort(sample.begin(), sample.end());
    EXPECT_NEAR(sample[sample.size() / 2], 0.08, 0.005);
}

TEST(Distributions, ZipfFavorsLowRanks)
{
    Rng rng(9);
    Zipf dist(1000, 1.1);
    std::vector<int> counts(1001, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[dist.sample(rng)];
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[100] / 2);
    int top10 = 0, total = 0;
    for (size_t r = 1; r <= 1000; ++r) {
        total += counts[r];
        if (r <= 10)
            top10 += counts[r];
    }
    EXPECT_GT(static_cast<double>(top10) / total, 0.3);
}

TEST(Distributions, ZipfZeroExponentIsUniform)
{
    Rng rng(10);
    Zipf dist(4, 0.0);
    std::vector<int> counts(5, 0);
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        ++counts[dist.sample(rng)];
    for (size_t r = 1; r <= 4; ++r)
        EXPECT_NEAR(counts[r], draws / 4, draws / 4 * 0.1);
}

TEST(Distributions, DiscreteMatchesWeights)
{
    Rng rng(11);
    Discrete dist({10, 20, 30}, {1.0, 2.0, 7.0});
    EXPECT_NEAR(dist.probability(0), 0.1, 1e-12);
    EXPECT_NEAR(dist.probability(2), 0.7, 1e-12);
    int c30 = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        c30 += dist.sample(rng) == 30;
    EXPECT_NEAR(c30, draws * 0.7, draws * 0.7 * 0.05);
}

TEST(Distributions, DiscreteRejectsDegenerate)
{
    EXPECT_THROW(Discrete({}, {}), Error);
    EXPECT_THROW(Discrete({1}, {0.0}), Error);
    EXPECT_THROW(Discrete({1, 2}, {1.0}), Error);
    EXPECT_THROW(Discrete({1, 2}, {1.0, -1.0}), Error);
}

// ---- stats ---------------------------------------------------------------

TEST(Stats, SummaryBasics)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, SummaryEmptyIsSafe)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, HistogramBucketing)
{
    Histogram h({0.0, 10.0, 20.0, 30.0});
    h.add(-1);   // underflow
    h.add(0);    // bucket 0
    h.add(9.99); // bucket 0
    h.add(10);   // bucket 1
    h.add(25);   // bucket 2
    h.add(30);   // overflow (right-open buckets)
    h.add(100);  // overflow
    EXPECT_EQ(h.countAt(0), 2u);
    EXPECT_EQ(h.countAt(1), 1u);
    EXPECT_EQ(h.countAt(2), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_NEAR(h.fraction(0), 2.0 / 7.0, 1e-12);
}

TEST(Stats, HistogramRejectsBadEdges)
{
    EXPECT_THROW(Histogram({1.0}), Error);
    EXPECT_THROW(Histogram({1.0, 1.0}), Error);
    EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Stats, EcdfEvaluation)
{
    Ecdf e;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        e.add(x);
    EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
}

TEST(Stats, KsDistanceIdenticalIsZero)
{
    Ecdf a, b;
    for (int i = 0; i < 100; ++i) {
        a.add(i);
        b.add(i);
    }
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 0.0);
}

TEST(Stats, KsDistanceDisjointIsOne)
{
    Ecdf a, b;
    for (int i = 0; i < 50; ++i) {
        a.add(i);
        b.add(i + 1000);
    }
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 1.0);
}

TEST(Stats, KsDistanceDetectsShift)
{
    Rng rng(12);
    Exponential d1(1.0), d2(2.0);
    Ecdf a, b, c;
    for (int i = 0; i < 5000; ++i) {
        a.add(d1.sample(rng));
        b.add(d1.sample(rng));
        c.add(d2.sample(rng));
    }
    EXPECT_LT(a.ksDistance(b), 0.05);  // same distribution
    EXPECT_GT(a.ksDistance(c), 0.2);   // different rate
}

// ---- hash ----------------------------------------------------------------

TEST(Hash, Fnv1aKnownVector)
{
    // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
    const uint8_t a = 'a';
    EXPECT_EQ(fnv1a64({&a, 1}), 0xaf63dc4c8601ec8cull);
}

TEST(Hash, Mix64IsBijectiveish)
{
    // Distinct inputs produce distinct outputs in a small sweep.
    std::vector<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.push_back(mix64(i));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()),
              seen.end());
}
