/**
 * @file
 * Tests of the trace substrate: packet model, TSH and pcap formats,
 * trace container operations, the synthetic Web workload generator
 * (including the paper's §3 aggregates) and the comparison-trace
 * transforms.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/packet.hpp"
#include "trace/pcap.hpp"
#include "trace/transforms.hpp"
#include "trace/trace.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
using namespace fcc::trace;

namespace {

PacketRecord
samplePacket(uint64_t tUs = 1234567)
{
    PacketRecord pkt;
    pkt.timestampNs = tUs * 1000;
    pkt.srcIp = parseIp("192.168.1.10");
    pkt.dstIp = parseIp("10.0.0.1");
    pkt.srcPort = 49152;
    pkt.dstPort = 80;
    pkt.tcpFlags = tcp_flags::Syn;
    pkt.payloadBytes = 0;
    pkt.seq = 1000;
    pkt.ack = 0;
    pkt.window = 65535;
    pkt.ipId = 42;
    return pkt;
}

Trace
smallWebTrace(uint64_t seed = 11, double seconds = 5.0)
{
    WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 60;
    WebTrafficGenerator gen(cfg);
    return gen.generate();
}

} // namespace

// ---- packet model -------------------------------------------------------

TEST(Packet, IpFormatting)
{
    EXPECT_EQ(formatIp(0x01020304), "1.2.3.4");
    EXPECT_EQ(formatIp(0xffffffff), "255.255.255.255");
    EXPECT_EQ(parseIp("1.2.3.4"), 0x01020304u);
    EXPECT_EQ(parseIp(formatIp(0xc0a80101)), 0xc0a80101u);
}

TEST(Packet, IpParseRejectsGarbage)
{
    EXPECT_THROW(parseIp("1.2.3"), util::Error);
    EXPECT_THROW(parseIp("1.2.3.4.5"), util::Error);
    EXPECT_THROW(parseIp("256.1.1.1"), util::Error);
    EXPECT_THROW(parseIp("hello"), util::Error);
}

TEST(Packet, FlagFormatting)
{
    EXPECT_EQ(formatTcpFlags(tcp_flags::Syn | tcp_flags::Ack),
              "SYN|ACK");
    EXPECT_EQ(formatTcpFlags(0), "-");
}

TEST(Packet, DerivedFields)
{
    PacketRecord pkt = samplePacket();
    pkt.payloadBytes = 100;
    EXPECT_EQ(pkt.ipTotalLength(), 140);
    EXPECT_EQ(pkt.timestampUs(), 1234567u);
    EXPECT_TRUE(pkt.hasSyn());
    EXPECT_FALSE(pkt.hasFin());
}

// ---- trace container -----------------------------------------------------

TEST(TraceContainer, SortAndOrderCheck)
{
    Trace t;
    PacketRecord a = samplePacket(300), b = samplePacket(100),
                 c = samplePacket(200);
    t.add(a);
    t.add(b);
    t.add(c);
    EXPECT_FALSE(t.isTimeOrdered());
    t.sortByTime();
    EXPECT_TRUE(t.isTimeOrdered());
    EXPECT_EQ(t[0].timestampUs(), 100u);
    EXPECT_EQ(t[2].timestampUs(), 300u);
}

TEST(TraceContainer, DurationAndBytes)
{
    Trace t;
    PacketRecord a = samplePacket(0);
    a.payloadBytes = 10;
    PacketRecord b = samplePacket(2500000);
    b.payloadBytes = 0;
    t.add(a);
    t.add(b);
    EXPECT_NEAR(t.durationSec(), 2.5, 1e-9);
    EXPECT_EQ(t.totalWireBytes(), 50u + 40u);
    EXPECT_EQ(t.totalPayloadBytes(), 10u);
}

TEST(TraceContainer, SliceSeconds)
{
    Trace t;
    for (int i = 0; i < 100; ++i)
        t.add(samplePacket(static_cast<uint64_t>(i) * 1000000));
    Trace slice = t.sliceSeconds(10.0, 20.0);
    EXPECT_EQ(slice.size(), 20u);
    EXPECT_EQ(slice[0].timestampUs(), 10000000u);
}

// ---- TSH format -----------------------------------------------------------

TEST(Tsh, RecordSizeIs44)
{
    Trace t;
    t.add(samplePacket());
    EXPECT_EQ(writeTsh(t).size(), 44u);
    EXPECT_EQ(tshRecordBytes, 44u);
}

TEST(Tsh, RoundTripPreservesEverything)
{
    Trace t = smallWebTrace();
    auto bytes = writeTsh(t);
    Trace back = readTsh(bytes);
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].timestampUs(), t[i].timestampUs());
        EXPECT_EQ(back[i].srcIp, t[i].srcIp);
        EXPECT_EQ(back[i].dstIp, t[i].dstIp);
        EXPECT_EQ(back[i].srcPort, t[i].srcPort);
        EXPECT_EQ(back[i].dstPort, t[i].dstPort);
        EXPECT_EQ(back[i].tcpFlags, t[i].tcpFlags);
        EXPECT_EQ(back[i].payloadBytes, t[i].payloadBytes);
        EXPECT_EQ(back[i].seq, t[i].seq);
        EXPECT_EQ(back[i].ack, t[i].ack);
        EXPECT_EQ(back[i].window, t[i].window);
        EXPECT_EQ(back[i].ipId, t[i].ipId);
    }
}

TEST(Tsh, ValidIpChecksum)
{
    Trace t;
    t.add(samplePacket());
    auto bytes = writeTsh(t);
    // Verifying the checksum over the IP header must give 0.
    uint32_t sum = 0;
    for (int i = 8; i < 28; i += 2)
        sum += static_cast<uint32_t>(bytes[i]) << 8 | bytes[i + 1];
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    EXPECT_EQ(sum, 0xffffu);
}

TEST(Tsh, RejectsPartialRecord)
{
    std::vector<uint8_t> bad(43, 0);
    EXPECT_THROW(readTsh(bad), util::Error);
}

TEST(Tsh, RejectsNonIpv4)
{
    Trace t;
    t.add(samplePacket());
    auto bytes = writeTsh(t);
    bytes[8] = 0x65;  // version 6
    EXPECT_THROW(readTsh(bytes), util::Error);
}

TEST(Tsh, FileRoundTrip)
{
    Trace t = smallWebTrace(3, 2.0);
    std::string path = fcc::test::tempPath("roundtrip.tsh");
    writeTshFile(t, path);
    Trace back = readTshFile(path);
    EXPECT_EQ(back.size(), t.size());
    std::remove(path.c_str());
}

// ---- pcap format -----------------------------------------------------------

TEST(Pcap, RoundTripPreservesHeaders)
{
    Trace t = smallWebTrace(17, 3.0);
    auto bytes = writePcap(t);
    Trace back = readPcap(bytes);
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].timestampUs(), t[i].timestampUs());
        EXPECT_EQ(back[i].srcIp, t[i].srcIp);
        EXPECT_EQ(back[i].dstIp, t[i].dstIp);
        EXPECT_EQ(back[i].srcPort, t[i].srcPort);
        EXPECT_EQ(back[i].dstPort, t[i].dstPort);
        EXPECT_EQ(back[i].tcpFlags, t[i].tcpFlags);
        EXPECT_EQ(back[i].payloadBytes, t[i].payloadBytes);
        EXPECT_EQ(back[i].seq, t[i].seq);
    }
}

TEST(Pcap, RejectsBadMagic)
{
    std::vector<uint8_t> bad(24, 0);
    EXPECT_THROW(readPcap(bad), util::Error);
}

TEST(Pcap, RejectsTruncatedBody)
{
    Trace t;
    t.add(samplePacket());
    auto bytes = writePcap(t);
    bytes.resize(bytes.size() - 10);
    EXPECT_THROW(readPcap(bytes), util::Error);
}

TEST(Pcap, FileRoundTrip)
{
    Trace t = smallWebTrace(5, 2.0);
    std::string path = fcc::test::tempPath("roundtrip.pcap");
    writePcapFile(t, path);
    Trace back = readPcapFile(path);
    EXPECT_EQ(back.size(), t.size());
    std::remove(path.c_str());
}

// ---- web generator ----------------------------------------------------

TEST(WebGen, DeterministicBySeed)
{
    Trace a = smallWebTrace(42, 3.0);
    Trace b = smallWebTrace(42, 3.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].timestampNs, b[i].timestampNs);
        EXPECT_EQ(a[i].srcIp, b[i].srcIp);
        EXPECT_EQ(a[i].seq, b[i].seq);
    }
    Trace c = smallWebTrace(43, 3.0);
    EXPECT_NE(a.size(), c.size());
}

TEST(WebGen, OutputIsTimeOrdered)
{
    EXPECT_TRUE(smallWebTrace(1).isTimeOrdered());
}

TEST(WebGen, FlowInfoMatchesTrace)
{
    WebGenConfig cfg;
    cfg.seed = 9;
    cfg.durationSec = 4.0;
    cfg.flowsPerSec = 50;
    WebTrafficGenerator gen(cfg);
    Trace t = gen.generate();
    uint64_t total = 0;
    for (const auto &info : gen.flowInfos())
        total += info.packets;
    EXPECT_EQ(total, t.size());
}

TEST(WebGen, ConnectionsAreWellFormedTcp)
{
    Trace t = smallWebTrace(2, 4.0);
    flow::FlowTable table;
    auto flows = table.assemble(t);
    size_t synStarts = 0;
    for (const auto &f : flows) {
        const auto &first = t[f.packetIndex.front()];
        if (first.hasSyn() && !first.hasAck())
            ++synStarts;
        // Server port is always 80 in the web workload.
        EXPECT_EQ(f.serverPort, 80);
        EXPECT_NE(f.clientPort, 80);
    }
    // Every flow the generator makes starts with a client SYN.
    EXPECT_EQ(synStarts, flows.size());
}

TEST(WebGen, PaperAggregatesHold)
{
    // §3: 98 % of flows < 51 packets; short flows ~75 % of packets
    // and ~80 % of bytes. Generator tolerances are deliberately wide
    // (sampling noise at this trace size).
    WebGenConfig cfg;
    cfg.seed = 1234;
    cfg.durationSec = 40.0;
    cfg.flowsPerSec = 120;
    WebTrafficGenerator gen(cfg);
    Trace t = gen.generate();
    flow::FlowTable table;
    auto flows = table.assemble(t);
    auto stats = flow::computeFlowStats(flows, t);

    EXPECT_NEAR(stats.shortFlowShare(), 0.98, 0.01);
    EXPECT_NEAR(stats.shortPacketShare(), 0.75, 0.06);
    EXPECT_NEAR(stats.shortByteShare(), 0.80, 0.08);
}

TEST(WebGen, SequenceNumbersProgress)
{
    Trace t = smallWebTrace(21, 3.0);
    flow::FlowTable table;
    auto flows = table.assemble(t);
    for (const auto &f : flows) {
        uint32_t prevSeq = 0;
        bool first = true;
        for (size_t i = 0; i < f.size(); ++i) {
            if (!f.fromClient[i])
                continue;
            const auto &pkt = t[f.packetIndex[i]];
            if (!first) {
                EXPECT_GE(pkt.seq - prevSeq, 0u);
            }
            prevSeq = pkt.seq;
            first = false;
        }
    }
}

TEST(WebGen, RejectsBadConfig)
{
    WebGenConfig cfg;
    cfg.durationSec = 0;
    EXPECT_THROW(WebTrafficGenerator{cfg}, util::Error);
    cfg = WebGenConfig{};
    cfg.longLenMax = 50;
    EXPECT_THROW(WebTrafficGenerator{cfg}, util::Error);
}

// ---- transforms -------------------------------------------------------

TEST(Transforms, RandomizeAddressesPreservesTiming)
{
    Trace t = smallWebTrace(6, 2.0);
    Trace r = trace::randomizeAddresses(t, 99);
    ASSERT_EQ(r.size(), t.size());
    size_t changed = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(r[i].timestampNs, t[i].timestampNs);
        EXPECT_EQ(r[i].payloadBytes, t[i].payloadBytes);
        EXPECT_EQ(r[i].srcIp, t[i].srcIp);
        changed += r[i].dstIp != t[i].dstIp;
    }
    EXPECT_GT(changed, t.size() * 9 / 10);
}

TEST(Transforms, RandomAddressesAreDiverse)
{
    Trace t = smallWebTrace(6, 2.0);
    Trace r = trace::randomizeAddresses(t, 99);
    std::set<uint32_t> unique;
    for (const auto &pkt : r)
        unique.insert(pkt.dstIp);
    // Uniform addresses: nearly every packet gets its own.
    EXPECT_GT(unique.size(), r.size() * 9 / 10);
}

TEST(Transforms, FracExpHasExponentialTimes)
{
    FracExpConfig cfg;
    cfg.seed = 3;
    cfg.packetCount = 20000;
    cfg.meanIptUs = 100.0;
    Trace t = generateFracExp(cfg);
    ASSERT_EQ(t.size(), cfg.packetCount);
    EXPECT_TRUE(t.isTimeOrdered());
    double meanUs = t.durationSec() * 1e6 /
                    static_cast<double>(t.size() - 1);
    EXPECT_NEAR(meanUs, 100.0, 5.0);
}

TEST(Transforms, FracExpShowsTemporalLocality)
{
    FracExpConfig cfg;
    cfg.seed = 4;
    cfg.packetCount = 30000;
    Trace t = generateFracExp(cfg);
    // Reuse probability 0.72 means far fewer unique destinations
    // than packets.
    std::set<uint32_t> unique;
    for (const auto &pkt : t)
        unique.insert(pkt.dstIp);
    EXPECT_LT(unique.size(), t.size() / 2);
    EXPECT_GT(unique.size(), t.size() / 20);
}

TEST(Transforms, FracExpAddressBitsAreBiased)
{
    FracExpConfig cfg;
    cfg.seed = 5;
    cfg.packetCount = 20000;
    Trace t = generateFracExp(cfg);
    // The multiplicative cascade biases every bit towards 1.
    size_t ones = 0;
    for (const auto &pkt : t)
        ones += __builtin_popcount(pkt.dstIp);
    double fraction =
        static_cast<double>(ones) / (32.0 * t.size());
    EXPECT_GT(fraction, 0.6);
}

TEST(Transforms, FracExpRejectsBadConfig)
{
    FracExpConfig cfg;
    cfg.packetCount = 0;
    EXPECT_THROW(generateFracExp(cfg), util::Error);
    cfg = FracExpConfig{};
    cfg.reuseProbability = 1.0;
    EXPECT_THROW(generateFracExp(cfg), util::Error);
}
