/**
 * @file
 * The continuous-capture archiver under test: session seal/re-arm
 * equivalence with one-shot runs, chunk rotation, the catalog's
 * crash-recovery contract, the in-process daemon loop — and the
 * headline scenario, SIGKILL'ing a live fccd child mid-archive and
 * proving every *sealed* archive survived intact and queryable.
 * The child binary's path arrives via FCCD_BIN (set by CMake);
 * the kill test skips when it is absent.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "archive/catalog_file.hpp"
#include "archive/daemon.hpp"
#include "archive/writer.hpp"
#include "codec/fcc/session.hpp"
#include "codec/fcc/stream.hpp"
#include "query/catalog.hpp"
#include "query/expr.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
namespace fs = std::filesystem;

namespace {

trace::Trace
webTrace(uint64_t seed, double seconds)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

using fcc::test::tempDir;
using fcc::test::tempPath;

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

/** Drain one archive into an in-memory trace. */
trace::Trace
decodeArchive(const std::string &path, const fccc::FccConfig &cfg)
{
    fccc::DecompressSession session(cfg);
    session.open(path);
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    session.drainTo(sink);
    return out;
}

} // namespace

// A cold session's epochs are bit-identical to independent one-shot
// runs over the split input, at every thread count — the re-arm
// path reuses the exact one-shot machinery.
TEST(Daemon, SealReArmMatchesSplitOneShotRuns)
{
    trace::Trace original = webTrace(91, 8.0);
    size_t half = original.size() / 2;
    trace::Trace first, second;
    for (size_t i = 0; i < original.size(); ++i)
        (i < half ? first : second).add(original[i]);

    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        fccc::FccConfig cfg;
        cfg.container = fccc::ContainerFormat::Fcc3;
        cfg.index = true;
        cfg.chunkRecords = 256;
        cfg.threads = threads;

        std::string oneShot1 = tempPath("split_a.fcc");
        std::string oneShot2 = tempPath("split_b.fcc");
        {
            trace::MemoryTraceSource src(first);
            fccc::compressSource(src, oneShot1, cfg);
        }
        {
            trace::MemoryTraceSource src(second);
            fccc::compressSource(src, oneShot2, cfg);
        }

        fccc::SessionOptions cold;
        cold.carryTemplates = false;
        fccc::CompressSession session(cfg, cold);
        session.feed({first.packets().data(), first.size()});
        std::vector<uint8_t> epoch1 = session.seal();
        session.reArm();
        session.feed({second.packets().data(), second.size()});
        std::vector<uint8_t> epoch2 = session.seal();

        EXPECT_EQ(epoch1, readFileBytes(oneShot1))
            << "threads=" << threads;
        EXPECT_EQ(epoch2, readFileBytes(oneShot2))
            << "threads=" << threads;

        EXPECT_EQ(session.stats().epochs, 2u);
        EXPECT_EQ(session.stats().archivesSealed, 2u);
        EXPECT_EQ(session.stats().packets, original.size());
    }
}

// Template carry keeps archives self-contained: a warm epoch decodes
// on its own, reconstructs the same packets, and creates fewer new
// clusters than the cold run over the same slice.
TEST(Daemon, CarriedTemplatesStaySelfContained)
{
    trace::Trace original = webTrace(17, 8.0);
    size_t half = original.size() / 2;
    trace::Trace first, second;
    for (size_t i = 0; i < original.size(); ++i)
        (i < half ? first : second).add(original[i]);

    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.chunkRecords = 256;

    fccc::CompressSession warm(cfg);  // carryTemplates default on
    warm.feed({first.packets().data(), first.size()});
    std::string epoch1 = tempPath("warm_1.fcc");
    warm.sealToFile(epoch1);
    warm.reArm();
    warm.feed({second.packets().data(), second.size()});
    fccc::SealInfo info2;
    std::vector<uint8_t> epoch2 = warm.seal(&info2);
    std::string epoch2Path = tempPath("warm_2.fcc");
    {
        std::ofstream out(epoch2Path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(epoch2.data()),
                  static_cast<std::streamsize>(epoch2.size()));
    }

    // Cold baseline over the same second half.
    fccc::SessionOptions coldOpts;
    coldOpts.carryTemplates = false;
    fccc::CompressSession cold(cfg, coldOpts);
    cold.feed({second.packets().data(), second.size()});
    fccc::SealInfo coldInfo;
    cold.seal(&coldInfo);

    // The warm store had the first epoch's clusters to match
    // against, so it created strictly fewer new ones.
    EXPECT_LT(info2.templatesNew, coldInfo.templatesNew);

    // Decode each epoch independently; together they reconstruct
    // exactly as the one-shot pipeline would have.
    trace::Trace a = decodeArchive(epoch1, cfg);
    trace::Trace b = decodeArchive(epoch2Path, cfg);
    EXPECT_EQ(a.size() + b.size(), original.size());
}

// rotateChunk() cuts the FCC3 chunk layout mid-stream without
// breaking decode equivalence or the archive's index.
TEST(Daemon, RotateChunkCutsIndexedLayout)
{
    trace::Trace original = webTrace(43, 6.0);
    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.index = true;
    cfg.chunkRecords = 100000;  // no record slicing: cuts only

    fccc::CompressSession session(cfg);
    size_t third = original.size() / 3;
    session.feed({original.packets().data(), third});
    session.rotateChunk();
    session.feed({original.packets().data() + third,
                  original.size() - third});
    fccc::SealInfo info;
    std::vector<uint8_t> bytes = session.seal(&info);
    EXPECT_GE(info.chunks, 2u);
    EXPECT_EQ(session.stats().chunksSealed, info.chunks);

    std::string path = tempPath("rotated.fcc");
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    trace::Trace restored = decodeArchive(path, cfg);
    EXPECT_EQ(restored.size(), original.size());
}

// The catalog survives every recoverable crash state: a sealed
// archive missing its line, a line whose archive vanished, a torn
// tail line, and a leftover .partial.
TEST(Daemon, CatalogRecoversFromCrashStates)
{
    std::string dir = tempDir("catalog_recovery");
    trace::Trace original = webTrace(7, 4.0);
    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.index = true;
    cfg.chunkRecords = 256;

    archive::ArchiveWriter writer(dir);
    fccc::CompressSession session(cfg);
    size_t half = original.size() / 2;
    session.feed({original.packets().data(), half});
    fccc::SealInfo infoA;
    std::vector<uint8_t> bytesA = session.seal(&infoA);
    archive::CatalogEntry entryA = writer.commit(bytesA, infoA);
    session.reArm();
    session.feed({original.packets().data() + half,
                  original.size() - half});
    fccc::SealInfo infoB;
    std::vector<uint8_t> bytesB = session.seal(&infoB);
    archive::CatalogEntry entryB = writer.commit(bytesB, infoB);

    // Crash state 1: sealed archive whose catalog line never made
    // it — drop B's line (truncate to just A's).
    std::string catalogPath =
        dir + "/" + archive::CatalogFile::fileName();
    {
        std::string lineA = archive::formatCatalogLine(entryA);
        std::ofstream out(catalogPath,
                          std::ios::binary | std::ios::trunc);
        out << lineA;
        // Crash state 2: a line for an archive that vanished.
        archive::CatalogEntry ghost = entryA;
        ghost.name = "archive-000099.fcc";
        out << archive::formatCatalogLine(ghost);
        // Crash state 3: a torn tail (power cut mid-append).
        out << "fccar1 archive-000100.fcc 123";
    }
    // Crash state 4: a .partial from a seal that never finished.
    { std::ofstream(dir + "/archive-000101.fcc.partial") << "x"; }

    std::vector<archive::CatalogEntry> repaired =
        archive::recoverCatalog(dir);
    ASSERT_EQ(repaired.size(), 2u);
    EXPECT_EQ(repaired[0], entryA);
    EXPECT_EQ(repaired[1], entryB);  // re-described from its bytes
    EXPECT_FALSE(
        fs::exists(dir + "/archive-000101.fcc.partial"));

    // The repaired file itself parses back to the same set, and a
    // fresh writer resumes numbering past both archives.
    std::vector<archive::CatalogEntry> reloaded =
        archive::loadCatalog(dir);
    EXPECT_EQ(reloaded.size(), 2u);
    archive::ArchiveWriter resumed(dir);
    EXPECT_EQ(resumed.nextSequence(), 2u);
}

// The in-process daemon loop: record-based rollover seals multiple
// archives whose concatenated decode is the whole input, and the
// catalog lists exactly the sealed set.
TEST(Daemon, InProcessRunSealsAndCatalogs)
{
    std::string dir = tempDir("daemon_run");
    trace::Trace original = webTrace(29, 6.0);
    std::string tshIn = tempPath("daemon_in.tsh");
    trace::writeTshFile(original, tshIn);

    archive::DaemonConfig config;
    config.input = tshIn;
    config.inputFormat = kTsh;
    config.outputDir = dir;
    config.codec.container = fccc::ContainerFormat::Fcc3;
    config.codec.index = true;
    config.codec.chunkRecords = 128;
    config.rotation.archiveRecords = original.size() / 3;

    archive::Daemon daemon(config);
    archive::DaemonControl control;
    archive::DaemonReport report = daemon.run(control);

    EXPECT_GE(report.sealed.size(), 3u);
    EXPECT_EQ(report.stats.packets, original.size());
    EXPECT_EQ(report.stats.archivesSealed, report.sealed.size());

    std::vector<archive::CatalogEntry> listed =
        archive::loadCatalog(dir);
    ASSERT_EQ(listed.size(), report.sealed.size());

    uint64_t decoded = 0;
    fccc::DecompressSession reader(config.codec);
    for (const archive::CatalogEntry &entry : listed) {
        std::string path = dir + "/" + entry.name;
        std::vector<uint8_t> bytes = readFileBytes(path);
        EXPECT_EQ(bytes.size(), entry.bytes);
        EXPECT_EQ(util::Crc32::of(bytes), entry.crc32);
        reader.open(path);
        trace::Trace part;
        trace::CollectTraceSink sink(part);
        fccc::StreamStats s = reader.drainTo(sink);
        EXPECT_EQ(s.packets, entry.packets);
        EXPECT_EQ(s.flows, entry.records);
        decoded += part.size();
    }
    EXPECT_EQ(decoded, original.size());
    EXPECT_EQ(reader.stats().epochs, listed.size());
}

// The headline crash test: SIGKILL a live fccd child mid-archive.
// Everything it sealed must decode bit-deterministically, match the
// recovered catalog, and be queryable through the serving path.
TEST(Daemon, FccdChildSurvivesSigkill)
{
    const char *bin = std::getenv("FCCD_BIN");
    if (bin == nullptr || bin[0] == '\0')
        GTEST_SKIP() << "FCCD_BIN not set";

    std::string dir = tempDir("fccd_kill");
    trace::Trace original = webTrace(61, 20.0);
    std::string tshIn = tempPath("fccd_kill_in.tsh");
    trace::writeTshFile(original, tshIn);

    // Pace the replay so the kill lands mid-run: ~4k pps with an
    // archive sealed every 500 packets gives a steady seal stream.
    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::execl(bin, bin, "--in-format", "tsh",
                "--archive-records", "500", "--chunk-records",
                "128", "--rate", "4000", tshIn.c_str(),
                dir.c_str(), static_cast<char *>(nullptr));
        std::_Exit(127);  // exec failed
    }

    // Wait for a few sealed archives, then kill without mercy.
    std::string catalogPath =
        dir + "/" + archive::CatalogFile::fileName();
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(60);
    size_t sealed = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        sealed = archive::loadCatalog(dir).size();
        if (sealed >= 3)
            break;
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, WNOHANG), 0)
            << "fccd exited early (status " << status << ")";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    ASSERT_GE(sealed, 3u) << "no archives sealed before timeout";
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Recovery reconciles whatever instant the kill hit.
    std::vector<archive::CatalogEntry> entries =
        archive::recoverCatalog(dir);
    ASSERT_GE(entries.size(), 3u);

    fccc::FccConfig cfg;
    cfg.container = fccc::ContainerFormat::Fcc3;
    cfg.index = true;
    cfg.chunkRecords = 128;
    uint64_t packets = 0;
    for (const archive::CatalogEntry &entry : entries) {
        std::string path = dir + "/" + entry.name;
        std::vector<uint8_t> bytes = readFileBytes(path);
        ASSERT_EQ(bytes.size(), entry.bytes) << entry.name;
        ASSERT_EQ(util::Crc32::of(bytes), entry.crc32)
            << entry.name;

        // Bit-exact round trip: the decode is thread-count
        // invariant, so two decodes at different widths must
        // produce identical TSH bytes.
        fccc::FccConfig one = cfg, four = cfg;
        one.threads = 1;
        four.threads = 4;
        std::string outA = tempPath("kill_a.tsh");
        std::string outB = tempPath("kill_b.tsh");
        fccc::decompressTraceFile(path, outA, one, kTsh);
        fccc::decompressTraceFile(path, outB, four, kTsh);
        EXPECT_EQ(readFileBytes(outA), readFileBytes(outB))
            << entry.name;
        packets += entry.packets;
    }
    EXPECT_LT(packets, original.size());  // it died mid-trace

    // And the serving path consumes the recovered directory.
    query::ArchiveCatalog catalog =
        query::ArchiveCatalog::fromCatalogFile(dir, cfg);
    EXPECT_EQ(catalog.size(), entries.size());
    trace::Trace matched;
    trace::CollectTraceSink sink(matched);
    query::CatalogQueryStats qs =
        catalog.run(query::parseExpr("flow.packets >= 1"), sink);
    EXPECT_EQ(qs.packetsMatched, packets);
}
