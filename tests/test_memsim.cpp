/**
 * @file
 * Tests of the memory-simulation substrate: cache geometry and LRU
 * behaviour, recorder checkpointing, and the Figure 2/3 report
 * aggregations.
 */

#include <gtest/gtest.h>

#include "memsim/cache_model.hpp"
#include "memsim/memory_recorder.hpp"
#include "memsim/profile_report.hpp"
#include "util/error.hpp"

using namespace fcc::memsim;
using fcc::util::Error;

// ---- CacheModel -----------------------------------------------------------

TEST(Cache, GeometryValidation)
{
    CacheConfig bad;
    bad.lineBytes = 48;  // not a power of two
    EXPECT_THROW(CacheModel{bad}, Error);
    bad = CacheConfig{};
    bad.ways = 0;
    EXPECT_THROW(CacheModel{bad}, Error);
    bad = CacheConfig{};
    bad.sizeBytes = 1000;  // not divisible
    EXPECT_THROW(CacheModel{bad}, Error);

    CacheConfig ok;
    EXPECT_EQ(ok.sets(), 16u * 1024 / (32 * 2));
    EXPECT_NO_THROW(CacheModel{ok});
}

TEST(Cache, ColdMissThenHit)
{
    CacheModel cache;
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x101f));  // same 32 B line
    EXPECT_FALSE(cache.access(0x1020)); // next line
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way cache: three lines mapping to one set evict LRU.
    CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.lineBytes = 64;
    cfg.ways = 2;
    CacheModel cache(cfg);
    uint32_t sets = cfg.sets();
    uint64_t a = 0, b = static_cast<uint64_t>(sets) * 64,
             c = 2ull * sets * 64;  // same set, different tags

    EXPECT_FALSE(cache.access(a));
    EXPECT_FALSE(cache.access(b));
    EXPECT_TRUE(cache.access(a));   // a MRU
    EXPECT_FALSE(cache.access(c));  // evicts b
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b));  // b was evicted
}

TEST(Cache, DirectMappedConflicts)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 32;
    cfg.ways = 1;
    CacheModel cache(cfg);
    uint64_t a = 0, b = 1024;  // same set in a direct-mapped cache
    cache.access(a);
    cache.access(b);
    EXPECT_FALSE(cache.access(a));  // ping-pong
    EXPECT_FALSE(cache.access(b));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, FlushInvalidates)
{
    CacheModel cache;
    cache.access(0x40);
    EXPECT_TRUE(cache.access(0x40));
    cache.flush();
    EXPECT_FALSE(cache.access(0x40));
}

TEST(Cache, FullyAssociativeNoConflicts)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 32;
    cfg.ways = 32;  // single set
    CacheModel cache(cfg);
    for (int i = 0; i < 32; ++i)
        cache.access(static_cast<uint64_t>(i) * 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(cache.access(static_cast<uint64_t>(i) * 32));
}

// ---- MemoryRecorder ------------------------------------------------------

TEST(Recorder, PerPacketCheckpoints)
{
    MemoryRecorder recorder;
    recorder.beginPacket();
    recorder.record(0x100, 4);
    recorder.record(0x200, 8);
    recorder.endPacket();
    recorder.beginPacket();
    recorder.record(0x300, 4);
    recorder.endPacket();

    ASSERT_EQ(recorder.samples().size(), 2u);
    EXPECT_EQ(recorder.samples()[0].accesses, 2u);
    EXPECT_EQ(recorder.samples()[1].accesses, 1u);
    EXPECT_EQ(recorder.totalAccesses(), 3u);
    EXPECT_FALSE(recorder.hasCache());
}

TEST(Recorder, AccessesOutsidePacketsCountGlobally)
{
    MemoryRecorder recorder;
    recorder.record(0x100, 4);  // e.g. table build
    recorder.beginPacket();
    recorder.record(0x200, 4);
    recorder.endPacket();
    EXPECT_EQ(recorder.totalAccesses(), 2u);
    ASSERT_EQ(recorder.samples().size(), 1u);
    EXPECT_EQ(recorder.samples()[0].accesses, 1u);
}

TEST(Recorder, CacheMissesPerPacket)
{
    CacheConfig cfg;
    MemoryRecorder recorder(cfg);
    recorder.beginPacket();
    recorder.record(0x1000, 4);  // miss
    recorder.record(0x1000, 4);  // hit
    recorder.endPacket();
    ASSERT_EQ(recorder.samples().size(), 1u);
    EXPECT_EQ(recorder.samples()[0].accesses, 2u);
    EXPECT_EQ(recorder.samples()[0].misses, 1u);
    EXPECT_DOUBLE_EQ(recorder.samples()[0].missRate(), 0.5);
}

TEST(Recorder, StraddlingAccessTouchesBothLines)
{
    CacheConfig cfg;  // 32 B lines
    MemoryRecorder recorder(cfg);
    recorder.beginPacket();
    recorder.record(0x101e, 8);  // crosses 0x1020 boundary
    recorder.endPacket();
    EXPECT_EQ(recorder.samples()[0].misses, 2u);
}

TEST(Recorder, ResetSamplesKeepsCacheWarm)
{
    CacheConfig cfg;
    MemoryRecorder recorder(cfg);
    recorder.beginPacket();
    recorder.record(0x1000, 4);
    recorder.endPacket();
    recorder.resetSamples();
    recorder.beginPacket();
    recorder.record(0x1000, 4);  // still cached
    recorder.endPacket();
    EXPECT_EQ(recorder.samples().size(), 1u);
    EXPECT_EQ(recorder.samples()[0].misses, 0u);
}

// ---- reports ---------------------------------------------------------------

TEST(Report, AccessCdf)
{
    std::vector<PacketSample> samples = {
        {10, 0}, {10, 0}, {20, 0}, {30, 0}};
    auto cdf = accessCdf(samples);
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].x, 10.0);
    EXPECT_DOUBLE_EQ(cdf[0].traffic, 0.5);
    EXPECT_DOUBLE_EQ(cdf[2].x, 30.0);
    EXPECT_DOUBLE_EQ(cdf[2].traffic, 1.0);
}

TEST(Report, TrafficShareInRange)
{
    std::vector<PacketSample> samples = {
        {53, 0}, {60, 0}, {67, 0}, {90, 0}};
    EXPECT_DOUBLE_EQ(trafficShareInAccessRange(samples, 53, 67),
                     0.75);
    EXPECT_DOUBLE_EQ(trafficShareInAccessRange(samples, 0, 10), 0.0);
    EXPECT_THROW(trafficShareInAccessRange(samples, 5, 1), Error);
}

TEST(Report, MissRateBucketsMatchFigure3Edges)
{
    std::vector<PacketSample> samples = {
        {100, 0},   // 0 %    -> bucket 0
        {100, 4},   // 4 %    -> bucket 0
        {100, 5},   // 5 %    -> bucket 1
        {100, 9},   // 9 %    -> bucket 1
        {100, 15},  // 15 %   -> bucket 2
        {100, 25},  // 25 %   -> bucket 3
        {100, 99},  // 99 %   -> bucket 3
    };
    auto buckets = missRateBuckets(samples);
    EXPECT_NEAR(buckets.share[0], 2.0 / 7, 1e-12);
    EXPECT_NEAR(buckets.share[1], 2.0 / 7, 1e-12);
    EXPECT_NEAR(buckets.share[2], 1.0 / 7, 1e-12);
    EXPECT_NEAR(buckets.share[3], 2.0 / 7, 1e-12);
    EXPECT_STREQ(MissRateBuckets::label(0), "0%-5%");
    EXPECT_STREQ(MissRateBuckets::label(3), ">20%");
}

TEST(Report, MeanAccesses)
{
    std::vector<PacketSample> samples = {{10, 0}, {20, 0}};
    EXPECT_DOUBLE_EQ(meanAccesses(samples), 15.0);
    EXPECT_DOUBLE_EQ(meanAccesses({}), 0.0);
}
