/**
 * @file
 * Golden-archive compatibility suite: committed archives under
 * tests/golden/ (one per container/backend/layout/fidelity cell,
 * produced by tools/golden_gen.cpp) must keep decoding to the
 * committed byte-exact references with the committed metadata.
 * This is the tripwire for accidental wire-format changes — if a
 * case here fails, either revert the encoding change or bump the
 * format deliberately: regenerate the corpus with golden_gen and
 * commit it together with a docs/FORMAT.md entry.
 *
 * Reference traces: FCC1 is the unchunked expansion; FCC2 and every
 * exact FCC3 variant share expected-chunked.tsh (chunk layout, not
 * container or backend, decides the expanded bytes); the quantized
 * and header tiers have their own documented reconstructions; the
 * flow tier has none and must say so cleanly.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "query/aggregate.hpp"
#include "query/query.hpp"
#include "trace/tsh.hpp"
#include "util/error.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

#ifndef FCC_GOLDEN_DIR
#error "FCC_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace {

std::string
goldenPath(const char *name)
{
    return std::string(FCC_GOLDEN_DIR) + "/" + name;
}

std::vector<uint8_t>
loadBytes(const char *name)
{
    std::ifstream in(goldenPath(name), std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file: "
                           << goldenPath(name);
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    EXPECT_FALSE(bytes.empty()) << goldenPath(name);
    return bytes;
}

struct Golden
{
    const char *name;
    uint8_t version;
    bool hasIndex;
    fccc::Fidelity fidelity;
    uint64_t quantumUs;
    /** Reference TSH the archive must decode to (null: flow tier,
     *  no packet reconstruction exists). */
    const char *expected;
};

const Golden kGoldens[] = {
    {"fcc1.fcc", 1, false, fccc::Fidelity::Exact, 0,
     "expected-fcc1.tsh"},
    {"fcc2.fcc", 2, false, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-store.fcc", 3, false, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-store-indexed.fcc", 3, true, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-deflate.fcc", 3, false, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-deflate-indexed.fcc", 3, true, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-range.fcc", 3, false, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-range-indexed.fcc", 3, true, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-range-lanes.fcc", 3, false, fccc::Fidelity::Exact, 0,
     "expected-chunked.tsh"},
    {"fcc3-range-lanes-indexed.fcc", 3, true,
     fccc::Fidelity::Exact, 0, "expected-chunked.tsh"},
    {"fcc3-quantized-indexed.fcc", 3, true,
     fccc::Fidelity::Quantized, 1000, "expected-quantized.tsh"},
    {"fcc3-header-indexed.fcc", 3, true, fccc::Fidelity::Header, 0,
     "expected-header.tsh"},
    {"fcc3-flow-indexed.fcc", 3, true, fccc::Fidelity::Flow, 0,
     nullptr},
};

} // namespace

TEST(Golden, ArchivesDecodeByteExact)
{
    for (const Golden &g : kGoldens) {
        if (g.expected == nullptr)
            continue;
        SCOPED_TRACE(g.name);
        std::vector<uint8_t> archive = loadBytes(g.name);
        std::vector<uint8_t> expected = loadBytes(g.expected);

        fccc::FccTraceCompressor codec{{}};
        trace::Trace decoded = codec.decompress(archive);
        EXPECT_EQ(trace::writeTsh(decoded), expected);
    }
}

TEST(Golden, ContainerMetadata)
{
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(g.name);
        std::vector<uint8_t> archive = loadBytes(g.name);

        fccc::ContainerStat stat;
        fccc::Datasets d =
            fccc::deserializeAuto(archive, 1, &stat);
        EXPECT_EQ(stat.version, g.version);
        EXPECT_EQ(stat.hasIndex, g.hasIndex);
        EXPECT_EQ(stat.fidelity, g.fidelity);
        EXPECT_EQ(stat.quantumUs, g.quantumUs);
        if (g.version == 3)
            EXPECT_FALSE(stat.columns.empty());
        EXPECT_EQ(d.fidelity, g.fidelity);
        if (g.fidelity == fccc::Fidelity::Flow)
            EXPECT_FALSE(d.flowRecords.empty());
    }
}

TEST(Golden, FlowTierRejectsPacketReconstruction)
{
    std::vector<uint8_t> archive = loadBytes("fcc3-flow-indexed.fcc");
    fccc::FccTraceCompressor codec{{}};
    try {
        codec.decompress(archive);
        FAIL() << "flow-tier decompress must throw";
    } catch (const util::Error &error) {
        EXPECT_NE(std::string(error.what()).find(
                      "no per-packet data"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Golden, FlowTierAggregatesMatchExactArchive)
{
    // The flow tier's whole contract: aggregate queries answer
    // exactly as they would against the exact archive of the same
    // trace — same per-server totals, same flow-size histogram.
    query::FccArchive exact(goldenPath("fcc3-deflate-indexed.fcc"));
    query::FccArchive flow(goldenPath("fcc3-flow-indexed.fcc"));

    query::AggregateRequest req;
    req.kind = query::AggregateKind::FlowCounts;
    query::AggregateResult a = exact.aggregate(req);
    query::AggregateResult b = flow.aggregate(req);

    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (size_t i = 0; i < a.servers.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.servers[i].serverIp, b.servers[i].serverIp);
        EXPECT_EQ(a.servers[i].flows, b.servers[i].flows);
        EXPECT_EQ(a.servers[i].packets, b.servers[i].packets);
        EXPECT_EQ(a.servers[i].wireBytes, b.servers[i].wireBytes);
    }
    EXPECT_EQ(a.histogram, b.histogram);
}

TEST(Golden, SourceTraceStillReadable)
{
    // source.tsh documents the corpus' provenance; keep it honest.
    trace::Trace tr =
        trace::readTshFile(goldenPath("source.tsh"));
    EXPECT_GT(tr.size(), 100u);
    EXPECT_TRUE(tr.isTimeOrdered());
}
