/**
 * @file
 * Tests of the netbench substrate: LPM correctness of both tree
 * structures (cross-checked against a linear-scan oracle), routing
 * table generation, the three packet kernels, and instrumentation
 * plumbing.
 */

#include <gtest/gtest.h>

#include <optional>

#include "memsim/memory_recorder.hpp"
#include "netbench/apps.hpp"
#include "netbench/patricia_trie.hpp"
#include "netbench/radix_tree.hpp"
#include "memsim/profile_report.hpp"
#include "netbench/route_entry.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace fcc;
using namespace fcc::netbench;

namespace {

/** Reference longest-prefix match by linear scan. */
std::optional<uint32_t>
oracleLookup(const std::vector<RouteEntry> &table, uint32_t addr)
{
    const RouteEntry *best = nullptr;
    for (const auto &entry : table) {
        if (!entry.matches(addr))
            continue;
        if (!best || entry.prefixLen > best->prefixLen)
            best = &entry;
    }
    if (!best)
        return std::nullopt;
    return best->nextHop;
}

RouteEntry
route(const char *prefix, uint8_t len, uint32_t hop)
{
    return RouteEntry{trace::parseIp(prefix), len, hop};
}

} // namespace

// ---- RouteEntry -----------------------------------------------------------

TEST(RouteEntry, MatchSemantics)
{
    RouteEntry r = route("10.1.0.0", 16, 1);
    EXPECT_TRUE(r.matches(trace::parseIp("10.1.2.3")));
    EXPECT_FALSE(r.matches(trace::parseIp("10.2.2.3")));
    RouteEntry def = route("0.0.0.0", 0, 9);
    EXPECT_TRUE(def.matches(0));
    EXPECT_TRUE(def.matches(0xffffffff));
    RouteEntry host = route("1.2.3.4", 32, 2);
    EXPECT_TRUE(host.matches(trace::parseIp("1.2.3.4")));
    EXPECT_FALSE(host.matches(trace::parseIp("1.2.3.5")));
}

TEST(RoutingTableGen, DeterministicAndUnique)
{
    auto a = generateRoutingTable(5000, 42);
    auto b = generateRoutingTable(5000, 42);
    ASSERT_EQ(a.size(), 5000u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prefix, b[i].prefix);
        EXPECT_EQ(a[i].prefixLen, b[i].prefixLen);
    }
    // Prefixes are aligned to their length and unique.
    std::set<std::pair<uint32_t, uint8_t>> seen;
    for (const auto &entry : a) {
        uint32_t mask = entry.prefixLen >= 32
            ? 0xffffffffu
            : (entry.prefixLen == 0
                   ? 0u
                   : ~((1u << (32 - entry.prefixLen)) - 1));
        EXPECT_EQ(entry.prefix & mask, entry.prefix);
        EXPECT_TRUE(seen.insert({entry.prefix, entry.prefixLen})
                        .second);
    }
}

TEST(RoutingTableGen, MassAtSlash24)
{
    auto table = generateRoutingTable(20000, 7);
    size_t at24 = 0;
    for (const auto &entry : table)
        at24 += entry.prefixLen == 24;
    double share = static_cast<double>(at24) / table.size();
    EXPECT_GT(share, 0.35);
    EXPECT_LT(share, 0.60);
}

// ---- RadixTree vs PatriciaTrie correctness -------------------------------

class LpmStructures : public ::testing::Test
{
  protected:
    void
    buildBoth(const std::vector<RouteEntry> &table)
    {
        radix.build(table);
        patricia.build(table);
        this->table = table;
    }

    void
    checkAgainstOracle(uint32_t addr)
    {
        auto expect = oracleLookup(table, addr);
        EXPECT_EQ(radix.lookup(addr), expect) << trace::formatIp(addr);
        EXPECT_EQ(patricia.lookup(addr), expect)
            << trace::formatIp(addr);
    }

    RadixTree radix;
    PatriciaTrie patricia;
    std::vector<RouteEntry> table;
};

TEST_F(LpmStructures, EmptyTreeFindsNothing)
{
    EXPECT_FALSE(radix.lookup(123).has_value());
    EXPECT_FALSE(patricia.lookup(123).has_value());
}

TEST_F(LpmStructures, NestedPrefixesPickMostSpecific)
{
    buildBoth({
        route("10.0.0.0", 8, 1),
        route("10.1.0.0", 16, 2),
        route("10.1.2.0", 24, 3),
        route("10.1.2.3", 32, 4),
    });
    checkAgainstOracle(trace::parseIp("10.1.2.3"));   // /32
    checkAgainstOracle(trace::parseIp("10.1.2.99"));  // /24
    checkAgainstOracle(trace::parseIp("10.1.9.9"));   // /16
    checkAgainstOracle(trace::parseIp("10.9.9.9"));   // /8
    checkAgainstOracle(trace::parseIp("11.0.0.1"));   // none
}

TEST_F(LpmStructures, DefaultRouteCatchesAll)
{
    buildBoth({route("0.0.0.0", 0, 7), route("128.0.0.0", 1, 8)});
    checkAgainstOracle(trace::parseIp("1.1.1.1"));
    checkAgainstOracle(trace::parseIp("200.1.1.1"));
}

TEST_F(LpmStructures, DuplicateInsertReplaces)
{
    buildBoth({route("10.0.0.0", 8, 1)});
    radix.insert(route("10.0.0.0", 8, 99));
    patricia.insert(route("10.0.0.0", 8, 99));
    EXPECT_EQ(radix.lookup(trace::parseIp("10.1.1.1")).value(), 99u);
    EXPECT_EQ(patricia.lookup(trace::parseIp("10.1.1.1")).value(),
              99u);
}

TEST_F(LpmStructures, SiblingSplitsInPatricia)
{
    // Prefixes sharing long runs force edge splits.
    buildBoth({
        route("192.168.0.0", 24, 1),
        route("192.168.1.0", 24, 2),
        route("192.168.0.128", 25, 3),
        route("192.169.0.0", 16, 4),
    });
    checkAgainstOracle(trace::parseIp("192.168.0.5"));
    checkAgainstOracle(trace::parseIp("192.168.0.200"));
    checkAgainstOracle(trace::parseIp("192.168.1.77"));
    checkAgainstOracle(trace::parseIp("192.169.5.5"));
    checkAgainstOracle(trace::parseIp("192.170.0.1"));
}

TEST_F(LpmStructures, RandomizedAgainstOracle)
{
    auto table = generateRoutingTable(3000, 11);
    buildBoth(table);
    util::Rng rng(12);
    for (int i = 0; i < 3000; ++i) {
        // Half the probes target table prefixes (guaranteed hits).
        uint32_t addr;
        if (i % 2 == 0) {
            const auto &entry = table[rng.uniformInt(
                0, table.size() - 1)];
            uint32_t hostMask = entry.prefixLen >= 32
                ? 0u
                : ((1u << (32 - entry.prefixLen)) - 1);
            addr = entry.prefix |
                   (static_cast<uint32_t>(rng.next()) & hostMask);
        } else {
            addr = static_cast<uint32_t>(rng.next());
        }
        checkAgainstOracle(addr);
    }
}

TEST_F(LpmStructures, PatriciaIsSmallerThanRadix)
{
    auto table = generateRoutingTable(5000, 21);
    buildBoth(table);
    // Path compression must pay off by an order of magnitude.
    EXPECT_LT(patricia.nodeCount() * 5, radix.nodeCount());
    EXPECT_EQ(patricia.entryCount(), radix.entryCount());
}

// ---- instrumentation ------------------------------------------------------

TEST(Instrumentation, LookupsRecordNodeVisits)
{
    memsim::MemoryRecorder recorder;
    RadixTree tree(&recorder);
    tree.insert(route("10.0.0.0", 8, 1));
    recorder.beginPacket();
    tree.lookup(trace::parseIp("10.1.1.1"));
    recorder.endPacket();
    ASSERT_EQ(recorder.samples().size(), 1u);
    // Root..depth-8 node chain plus one entry access: 9 nodes + 1.
    EXPECT_EQ(recorder.samples()[0].accesses, 10u);
}

TEST(Instrumentation, PatriciaVisitsFewerNodes)
{
    auto table = generateRoutingTable(5000, 31);
    memsim::MemoryRecorder recRadix, recPatricia;
    RadixTree radix(&recRadix);
    PatriciaTrie patricia(&recPatricia);
    radix.build(table);
    patricia.build(table);

    util::Rng rng(5);
    recRadix.resetSamples();
    recPatricia.resetSamples();
    for (int i = 0; i < 2000; ++i) {
        uint32_t addr = table[rng.uniformInt(0, table.size() - 1)]
                            .prefix |
                        (static_cast<uint32_t>(rng.next()) & 0xff);
        recRadix.beginPacket();
        radix.lookup(addr);
        recRadix.endPacket();
        recPatricia.beginPacket();
        patricia.lookup(addr);
        recPatricia.endPacket();
    }
    double radixMean = memsim::meanAccesses(recRadix.samples());
    double patriciaMean =
        memsim::meanAccesses(recPatricia.samples());
    EXPECT_LT(patriciaMean, radixMean);
    EXPECT_GT(patriciaMean, 1.0);
}

// ---- kernels ---------------------------------------------------------------

namespace {

trace::Trace
kernelTrace()
{
    trace::WebGenConfig cfg;
    cfg.seed = 55;
    cfg.durationSec = 3.0;
    cfg.flowsPerSec = 60;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

} // namespace

TEST(Kernels, AllThreeProduceOneSamplePerPacket)
{
    auto t = kernelTrace();
    std::vector<uint32_t> dsts;
    for (const auto &pkt : t)
        dsts.push_back(pkt.dstIp);
    auto table = generateRoutingTable(4000, 3, dsts);

    memsim::CacheConfig cacheCfg;
    memsim::MemoryRecorder recorder(cacheCfg);

    RouteApp routeApp(table, &recorder);
    auto s1 = profileTrace(routeApp, t, recorder);
    EXPECT_EQ(s1.size(), t.size());

    NatApp natApp(table, &recorder);
    auto s2 = profileTrace(natApp, t, recorder);
    EXPECT_EQ(s2.size(), t.size());
    EXPECT_GT(natApp.bindings(), 0u);

    RtrApp rtrApp(table, &recorder);
    auto s3 = profileTrace(rtrApp, t, recorder);
    EXPECT_EQ(s3.size(), t.size());

    // NAT does everything Route does plus table probes.
    EXPECT_GT(memsim::meanAccesses(s2), memsim::meanAccesses(s1));
    // RTR's compressed trie touches fewer nodes than Route's.
    EXPECT_LT(memsim::meanAccesses(s3), memsim::meanAccesses(s1));
}

TEST(Kernels, NatReusesBindingsForSameFlow)
{
    auto table = generateRoutingTable(100, 9);
    memsim::MemoryRecorder recorder;
    NatApp nat(table, &recorder, 1 << 10);
    trace::PacketRecord pkt;
    pkt.srcIp = 1;
    pkt.dstIp = 2;
    pkt.srcPort = 1000;
    pkt.dstPort = 80;
    for (int i = 0; i < 10; ++i)
        nat.process(pkt);
    EXPECT_EQ(nat.bindings(), 1u);
    pkt.srcPort = 1001;
    nat.process(pkt);
    EXPECT_EQ(nat.bindings(), 2u);
}

TEST(Kernels, NatRejectsBadSlotCount)
{
    auto table = generateRoutingTable(10, 1);
    EXPECT_THROW(NatApp(table, nullptr, 100), util::Error);
    EXPECT_THROW(NatApp(table, nullptr, 8), util::Error);
}
