/**
 * @file
 * Seekable-archive tests: the FCC3 chunk/flow index block and the
 * random-access query subsystem. Indexed archives must reconstruct
 * exactly like unindexed ones, queries must return exactly what a
 * full decode + filter would, a corrupt index must degrade to a
 * full decode or a clean Error (never wrong output), and the Bloom
 * fingerprints must hold their false-positive bound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <tuple>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "codec/fcc/stream.hpp"
#include "query/query.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

/** Explicit TSH spec for the raw 44-byte record fixtures. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

trace::Trace
webTrace(uint64_t seed, double seconds)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

using fcc::test::tempPath;

void
writeBytes(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** Field-wise total order so packet sets compare as multisets. */
auto
packetKey(const trace::PacketRecord &p)
{
    return std::tuple(p.timestampNs, p.srcIp, p.dstIp, p.srcPort,
                      p.dstPort, p.tcpFlags, p.payloadBytes, p.seq,
                      p.ack, p.window, p.ipId);
}

std::vector<trace::PacketRecord>
sortedPackets(std::vector<trace::PacketRecord> packets)
{
    std::sort(packets.begin(), packets.end(),
              [](const trace::PacketRecord &a,
                 const trace::PacketRecord &b) {
                  return packetKey(a) < packetKey(b);
              });
    return packets;
}

void
expectSamePackets(const std::vector<trace::PacketRecord> &a,
                  const std::vector<trace::PacketRecord> &b,
                  const char *what)
{
    auto sa = sortedPackets(a);
    auto sb = sortedPackets(b);
    ASSERT_EQ(sa.size(), sb.size()) << what;
    for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_EQ(packetKey(sa[i]), packetKey(sb[i]))
            << what << " packet " << i;
}

/** The reference seed-2005 archive, written once per fixture run. */
struct SeedArchive
{
    std::string tshPath = tempPath("query_seed.tsh");
    std::string idxPath = tempPath("query_seed_idx.fcc");
    std::string plainPath = tempPath("query_seed_plain.fcc");
    trace::Trace original;
    fccc::FccConfig cfg;

    SeedArchive()
    {
        original = webTrace(2005, 8.0);
        trace::writeTshFile(original, tshPath);
        cfg.container = fccc::ContainerFormat::Fcc3;
        cfg.chunkRecords = 64;  // span many chunks
        cfg.threads = 1;
        fccc::FccConfig idxCfg = cfg;
        idxCfg.index = true;
        fccc::compressTraceFile(tshPath, idxPath, idxCfg);
        fccc::compressTraceFile(tshPath, plainPath, cfg);
    }

    ~SeedArchive()
    {
        std::remove(tshPath.c_str());
        std::remove(idxPath.c_str());
        std::remove(plainPath.c_str());
    }
};

SeedArchive &
seedArchive()
{
    static SeedArchive archive;
    return archive;
}

std::vector<trace::PacketRecord>
runQuery(const std::string &path, const query::Predicate &pred,
         const fccc::FccConfig &cfg, query::QueryStats *stats,
         bool forceFullDecode = false)
{
    query::FccArchive archive(path, cfg);
    trace::Trace out;
    trace::CollectTraceSink sink(out);
    query::QueryStats s = archive.run(pred, sink, forceFullDecode);
    if (stats != nullptr)
        *stats = s;
    return out.packets();
}

} // namespace

TEST(QueryIndex, IndexedReconstructsIdenticallyToUnindexed)
{
    SeedArchive &seed = seedArchive();
    std::string outIdx = tempPath("rt_idx.tsh");
    std::string outPlain = tempPath("rt_plain.tsh");
    auto sIdx =
        fccc::decompressTraceFile(seed.idxPath, outIdx, seed.cfg,
                                  kTsh);
    auto sPlain = fccc::decompressTraceFile(
        seed.plainPath, outPlain, seed.cfg, kTsh);
    EXPECT_EQ(sIdx.packets, sPlain.packets);
    EXPECT_EQ(sIdx.packets, seed.original.size());
    EXPECT_EQ(readBytes(outIdx), readBytes(outPlain));
    std::remove(outIdx.c_str());
    std::remove(outPlain.c_str());

    // The parse reports the index; the plain file explicitly lacks
    // it; both decode to the same datasets.
    fccc::ContainerStat statIdx, statPlain;
    auto dIdx = fccc::deserialize(readBytes(seed.idxPath), nullptr,
                                  &statIdx);
    auto dPlain = fccc::deserialize(readBytes(seed.plainPath),
                                    nullptr, &statPlain);
    EXPECT_TRUE(statIdx.hasIndex);
    EXPECT_GT(statIdx.sizes.indexBytes, 0u);
    EXPECT_FALSE(statPlain.hasIndex);
    EXPECT_EQ(statPlain.sizes.indexBytes, 0u);
    EXPECT_EQ(dIdx.timeSeq, dPlain.timeSeq);
    EXPECT_EQ(dIdx.shortTemplates, dPlain.shortTemplates);
    EXPECT_EQ(dIdx.longTemplates, dPlain.longTemplates);
    EXPECT_EQ(dIdx.addresses, dPlain.addresses);
    EXPECT_EQ(dIdx.chunkSizes, dPlain.chunkSizes);
    // The accounting covers every byte of the indexed file.
    EXPECT_EQ(statIdx.sizes.total(), readBytes(seed.idxPath).size());
}

TEST(QueryIndex, IndexedCompressionByteIdenticalAcrossThreads)
{
    SeedArchive &seed = seedArchive();
    std::vector<uint8_t> ref = readBytes(seed.idxPath);
    ASSERT_FALSE(ref.empty());
    for (uint32_t threads : {2u, 4u, 8u}) {
        fccc::FccConfig cfg = seed.cfg;
        cfg.index = true;
        cfg.threads = threads;
        std::string path = tempPath("thr_idx.fcc");
        fccc::compressTraceFile(seed.tshPath, path, cfg);
        EXPECT_EQ(readBytes(path), ref) << threads << " threads";
        std::remove(path.c_str());
    }
}

TEST(QueryIndex, ArchiveIndexSummariesAreConsistent)
{
    SeedArchive &seed = seedArchive();
    std::vector<uint8_t> bytes = readBytes(seed.idxPath);
    auto index = fccc::readArchiveIndex(bytes);
    ASSERT_TRUE(index.has_value());
    fccc::Datasets d = fccc::deserialize(bytes);
    ASSERT_FALSE(index->chunks.empty());
    ASSERT_EQ(index->chunks.size(), d.chunkSizes.size());
    EXPECT_EQ(index->totalRecords(), d.timeSeq.size());

    // Per-chunk summaries must agree with the decoded records, and
    // the Bloom filters must never produce a false negative.
    size_t rec = 0;
    for (size_t c = 0; c < index->chunks.size(); ++c) {
        const fccc::ChunkSummary &s = index->chunks[c];
        EXPECT_EQ(s.records, d.chunkSizes[c]);
        EXPECT_EQ(s.minFirstUs, d.timeSeq[rec].firstTimestampUs);
        uint64_t packets = 0, maxFlow = 0;
        for (size_t i = rec; i < rec + d.chunkSizes[c]; ++i) {
            const auto &r = d.timeSeq[i];
            uint64_t n = r.isLong
                ? d.longTemplates[r.templateIndex].sValues.size()
                : d.shortTemplates[r.templateIndex].size();
            packets += n;
            maxFlow = std::max(maxFlow, n);
            EXPECT_TRUE(s.mayContainServer(
                d.addresses[r.addressIndex]))
                << "false negative in chunk " << c;
            EXPECT_GE(s.maxEndUs, r.firstTimestampUs);
        }
        EXPECT_EQ(s.packets, packets);
        EXPECT_EQ(s.maxFlowPackets, maxFlow);
        rec += d.chunkSizes[c];
    }
}

TEST(QueryIndex, BloomFalsePositiveRateBounded)
{
    SeedArchive &seed = seedArchive();
    auto index = fccc::readArchiveIndex(readBytes(seed.idxPath));
    ASSERT_TRUE(index.has_value());
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    std::set<uint32_t> present(d.addresses.begin(),
                               d.addresses.end());

    // ~10 bits and 5 probes per distinct server give ~1 % expected
    // FPR; assert a 3 % bound over many absent addresses to keep
    // the test noise-proof.
    util::Rng rng(0xb100f);
    uint64_t probes = 0, positives = 0;
    for (int i = 0; i < 2000; ++i) {
        uint32_t ip = static_cast<uint32_t>(rng.next());
        if (present.count(ip) != 0)
            continue;
        for (const fccc::ChunkSummary &s : index->chunks) {
            ++probes;
            positives += s.mayContainServer(ip) ? 1 : 0;
        }
    }
    ASSERT_GT(probes, 1000u);
    double fpr = static_cast<double>(positives) /
                 static_cast<double>(probes);
    EXPECT_LT(fpr, 0.03) << positives << "/" << probes;
}

TEST(QueryIndex, SingleFlowQueryTouchesStrictlyFewerChunksAndBytes)
{
    // The PR's acceptance bar: on the seed-2005 reference trace, a
    // single-flow extraction must read and decode strictly less
    // than a full decompression.
    SeedArchive &seed = seedArchive();
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    auto index = fccc::readArchiveIndex(readBytes(seed.idxPath));
    ASSERT_TRUE(index.has_value());
    ASSERT_GT(index->chunks.size(), 4u);

    // Pick a server that lives in exactly one chunk (the Zipf tail
    // guarantees such servers exist at 64-record chunks).
    std::set<uint32_t> seen;
    uint32_t rareIp = 0;
    size_t rec = 0;
    for (size_t c = 0; c < d.chunkSizes.size() && rareIp == 0; ++c) {
        std::set<uint32_t> inChunk;
        for (size_t i = rec; i < rec + d.chunkSizes[c]; ++i)
            inChunk.insert(d.addresses[d.timeSeq[i].addressIndex]);
        rec += d.chunkSizes[c];
        // A server unique to this chunk and absent everywhere else.
        for (uint32_t ip : inChunk) {
            size_t total = 0;
            for (const auto &r : d.timeSeq)
                total += d.addresses[r.addressIndex] == ip ? 1 : 0;
            size_t here = 0;
            for (size_t i = rec - d.chunkSizes[c]; i < rec; ++i)
                here += d.addresses[d.timeSeq[i].addressIndex] == ip
                    ? 1
                    : 0;
            if (total == here) {
                rareIp = ip;
                break;
            }
        }
    }
    ASSERT_NE(rareIp, 0u) << "no single-chunk server in the seed "
                             "trace; shrink chunkRecords";

    query::Predicate pred;
    pred.serverIp = rareIp;
    query::QueryStats stats;
    auto packets =
        runQuery(seed.idxPath, pred, seed.cfg, &stats);
    EXPECT_TRUE(stats.usedIndex);
    EXPECT_GT(packets.size(), 0u);
    EXPECT_LT(stats.chunksDecoded, stats.chunksTotal);
    EXPECT_LT(stats.bytesRead, stats.fileBytes);
}

TEST(QueryIndex, QueryMatchesFullDecodePlusFilter)
{
    SeedArchive &seed = seedArchive();
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    ASSERT_FALSE(d.addresses.empty());
    // The full reconstruction, as the ground truth to filter.
    fccc::FccTraceCompressor codec(seed.cfg);
    trace::Trace full = codec.decompress(readBytes(seed.idxPath));

    // --flow: all packets of the flows using a given server. Under
    // the default (paper §4) addressing every packet of a flow
    // carries the server as destination, so the ground-truth filter
    // is a dstIp match.
    uint32_t ip = d.addresses[d.addresses.size() / 2];
    query::Predicate flowPred;
    flowPred.serverIp = ip;
    std::vector<trace::PacketRecord> expected;
    for (const auto &pkt : full.packets())
        if (pkt.dstIp == ip)
            expected.push_back(pkt);
    query::QueryStats stats;
    auto viaIndex =
        runQuery(seed.idxPath, flowPred, seed.cfg, &stats);
    EXPECT_TRUE(stats.usedIndex);
    expectSamePackets(viaIndex, expected, "--flow vs dstIp filter");
    auto viaFull = runQuery(seed.idxPath, flowPred, seed.cfg,
                            nullptr, /*forceFullDecode=*/true);
    expectSamePackets(viaIndex, viaFull, "--flow vs full decode");

    // --time: a window in the middle of the trace.
    uint64_t t0 = d.timeSeq[d.timeSeq.size() / 3].firstTimestampUs;
    uint64_t t1 = t0 + 2'000'000;
    query::Predicate timePred;
    timePred.timeUs = {t0, t1};
    expected.clear();
    for (const auto &pkt : full.packets())
        if (pkt.timestampUs() >= t0 && pkt.timestampUs() <= t1)
            expected.push_back(pkt);
    query::QueryStats timeStats;
    auto viaTime =
        runQuery(seed.idxPath, timePred, seed.cfg, &timeStats);
    expectSamePackets(viaTime, expected, "--time vs ts filter");
    EXPECT_LT(timeStats.chunksDecoded, timeStats.chunksTotal);

    // --min-packets: long flows only; equivalence against the
    // forced full-decode path (flow sizes are not derivable from
    // packets alone).
    query::Predicate longPred;
    longPred.minFlowPackets = 51;
    auto viaLong =
        runQuery(seed.idxPath, longPred, seed.cfg, nullptr);
    auto viaLongFull = runQuery(seed.idxPath, longPred, seed.cfg,
                                nullptr, true);
    EXPECT_GT(viaLong.size(), 0u);
    expectSamePackets(viaLong, viaLongFull,
                      "--min-packets vs full decode");

    // No predicate: the query is a full reconstruction.
    query::Predicate all;
    auto viaAll = runQuery(seed.idxPath, all, seed.cfg, nullptr);
    expectSamePackets(viaAll, full.packets(), "match-all");
}

TEST(QueryIndex, QueryResultIndependentOfThreadCount)
{
    SeedArchive &seed = seedArchive();
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    query::Predicate pred;
    pred.serverIp = d.addresses.front();

    fccc::FccConfig cfg1 = seed.cfg;
    cfg1.threads = 1;
    auto ref = runQuery(seed.idxPath, pred, cfg1, nullptr);
    for (uint32_t threads : {2u, 8u}) {
        fccc::FccConfig cfg = seed.cfg;
        cfg.threads = threads;
        auto got = runQuery(seed.idxPath, pred, cfg, nullptr);
        ASSERT_EQ(got.size(), ref.size()) << threads;
        for (size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(packetKey(got[i]), packetKey(ref[i]))
                << threads << " threads, packet " << i;
    }
}

TEST(QueryIndex, LargerGapBypassesTimeWindowPruning)
{
    // The index's maxEndUs bounds assume the compress-time gap; a
    // query reconstructing with a LARGER gap must not trust them —
    // it falls back to the full-decode path and still returns
    // exactly what that configuration's full reconstruction holds.
    SeedArchive &seed = seedArchive();
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    fccc::FccConfig wideGap = seed.cfg;
    wideGap.defaultGapUs = 5000;

    query::Predicate pred;
    uint64_t t0 = d.timeSeq[d.timeSeq.size() / 2].firstTimestampUs;
    pred.timeUs = {t0, t0 + 1'000'000};
    query::QueryStats stats;
    auto got = runQuery(seed.idxPath, pred, wideGap, &stats);
    EXPECT_FALSE(stats.usedIndex);
    auto want = runQuery(seed.idxPath, pred, wideGap, nullptr,
                         /*forceFullDecode=*/true);
    expectSamePackets(got, want, "wide-gap time window");

    // A non-time predicate keeps the indexed path even with the
    // wider gap (Bloom and flow-size pruning are gap-independent).
    query::Predicate flowPred;
    flowPred.serverIp = d.addresses.front();
    query::QueryStats flowStats;
    runQuery(seed.idxPath, flowPred, wideGap, &flowStats);
    EXPECT_TRUE(flowStats.usedIndex);
}

TEST(QueryIndex, UnindexedContainersFallBackToFullDecode)
{
    // FCC2 (and any other un-indexed container) must answer the
    // same queries through the full-decode path.
    SeedArchive &seed = seedArchive();
    fccc::FccConfig cfg2 = seed.cfg;
    cfg2.container = fccc::ContainerFormat::Fcc2;
    std::string f2 = tempPath("fallback.fcc");
    fccc::compressTraceFile(seed.tshPath, f2, cfg2);

    fccc::Datasets d = fccc::deserialize(readBytes(f2));
    query::Predicate pred;
    pred.serverIp = d.addresses[1];
    query::QueryStats stats;
    auto viaF2 = runQuery(f2, pred, seed.cfg, &stats);
    EXPECT_FALSE(stats.usedIndex);
    EXPECT_EQ(stats.bytesRead, stats.fileBytes);
    auto viaIdx = runQuery(seed.idxPath, pred, seed.cfg, nullptr);
    expectSamePackets(viaF2, viaIdx, "fcc2 fallback vs indexed");
    std::remove(f2.c_str());
}

TEST(QueryIndex, CorruptOrTruncatedIndexDegradesSafely)
{
    // Any mutation of the index region must leave exactly two
    // outcomes: a clean util::Error, or a silent fall back to the
    // full-decode path with byte-exact results. Wrong output is the
    // one forbidden outcome.
    SeedArchive &seed = seedArchive();
    std::vector<uint8_t> good = readBytes(seed.idxPath);
    ASSERT_GT(good.size(), fccc::indexFooterBytes);
    uint64_t region = fccc::indexRegionBytes(good);
    ASSERT_GT(region, fccc::indexFooterBytes);

    query::Predicate all;
    auto reference =
        runQuery(seed.idxPath, all, seed.cfg, nullptr);
    ASSERT_EQ(reference.size(), seed.original.size());

    std::string path = tempPath("corrupt_idx.fcc");
    auto checkMutant = [&](const std::vector<uint8_t> &mutant,
                           const char *what) {
        writeBytes(path, mutant);
        // The low-level parse must never produce wrong datasets
        // silently — Error or success, no crash.
        try {
            fccc::deserialize(mutant);
        } catch (const util::Error &) {
        }
        try {
            query::QueryStats stats;
            auto got = runQuery(path, all, seed.cfg, &stats);
            expectSamePackets(got, reference, what);
        } catch (const util::Error &) {
            // A clean rejection is an acceptable outcome.
        }
    };

    // Truncations across the whole index region (and into the last
    // column frame).
    for (size_t cut : {size_t{1}, size_t{7}, size_t{15},
                       size_t{16}, size_t{17},
                       static_cast<size_t>(region / 2),
                       static_cast<size_t>(region - 1),
                       static_cast<size_t>(region),
                       static_cast<size_t>(region + 3)}) {
        std::vector<uint8_t> mutant(good.begin(),
                                    good.end() - cut);
        checkMutant(mutant, "truncated");
    }

    // Single-byte corruption: every footer byte, and a stride of
    // payload bytes across the index region.
    for (size_t i = good.size() - fccc::indexFooterBytes;
         i < good.size(); ++i) {
        std::vector<uint8_t> mutant = good;
        mutant[i] ^= 0x5a;
        checkMutant(mutant, "footer flip");
    }
    for (size_t off = 1; off < region - fccc::indexFooterBytes;
         off += 13) {
        std::vector<uint8_t> mutant = good;
        mutant[good.size() - region + off] ^= 0xa5;
        checkMutant(mutant, "payload flip");
    }
    std::remove(path.c_str());
}

TEST(QueryIndex, IndexRequiresChunkedFcc3)
{
    SeedArchive &seed = seedArchive();
    trace::Trace tr = seed.original;
    fccc::FccConfig cfg = seed.cfg;
    cfg.index = true;
    cfg.chunkRecords = 0;
    EXPECT_THROW(fccc::FccTraceCompressor(cfg).compress(tr),
                 util::Error);
    cfg.chunkRecords = 64;
    cfg.container = fccc::ContainerFormat::Fcc2;
    EXPECT_THROW(fccc::FccTraceCompressor(cfg).compress(tr),
                 util::Error);
}

TEST(QueryIndex, EmptyDatasetsRoundTripWithIndex)
{
    fccc::Datasets empty;
    fccc::SizeBreakdown sizes;
    fccc::IndexOptions options;
    auto bytes = fccc::serializeColumnar(
        empty, 4096, codec::backend::EntropyBackend::Deflate, sizes,
        nullptr, nullptr, &options);
    EXPECT_GT(sizes.indexBytes, 0u);

    fccc::ContainerStat stat;
    fccc::Datasets back = fccc::deserialize(bytes, nullptr, &stat);
    EXPECT_TRUE(stat.hasIndex);
    EXPECT_TRUE(back.timeSeq.empty());
    EXPECT_TRUE(back.chunkSizes.empty());

    auto index = fccc::readArchiveIndex(bytes);
    ASSERT_TRUE(index.has_value());
    EXPECT_TRUE(index->chunks.empty());

    std::string path = tempPath("empty_idx.fcc");
    writeBytes(path, bytes);
    query::Predicate all;
    query::QueryStats stats;
    auto packets = runQuery(path, all, fccc::FccConfig{}, &stats);
    EXPECT_TRUE(stats.usedIndex);
    EXPECT_TRUE(packets.empty());
    std::remove(path.c_str());
}

TEST(QueryIndex, PlanNeverDropsAMatchingChunk)
{
    // plan() may over-approximate (Bloom false positives) but must
    // never exclude a chunk that holds a matching flow — for every
    // stored server, every chunk containing it must be planned.
    SeedArchive &seed = seedArchive();
    fccc::Datasets d = fccc::deserialize(readBytes(seed.idxPath));
    query::FccArchive archive(seed.idxPath, seed.cfg);
    ASSERT_TRUE(archive.hasIndex());

    std::vector<std::set<uint32_t>> serversOf(d.chunkSizes.size());
    size_t rec = 0;
    for (size_t c = 0; c < d.chunkSizes.size(); ++c) {
        for (size_t i = rec; i < rec + d.chunkSizes[c]; ++i)
            serversOf[c].insert(
                d.addresses[d.timeSeq[i].addressIndex]);
        rec += d.chunkSizes[c];
    }
    for (uint32_t ip : d.addresses) {
        query::Predicate pred;
        pred.serverIp = ip;
        auto planned = archive.plan(pred);
        std::set<size_t> plannedSet(planned.begin(), planned.end());
        for (size_t c = 0; c < serversOf.size(); ++c) {
            if (serversOf[c].count(ip) != 0) {
                ASSERT_TRUE(plannedSet.count(c) != 0)
                    << "chunk " << c << " dropped for server " << ip;
            }
        }
    }
}
