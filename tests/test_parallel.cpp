/**
 * @file
 * Parallel pipeline tests: thread-count determinism of compression
 * and decompression, FCC2 chunked container round trips, FCC1
 * backward compatibility, sharded flow assembly equivalence, and
 * thread pool basics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <tuple>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#include "test_common.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

/** Explicit TSH spec for the raw 44-byte record fixtures. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

trace::Trace
webTrace(uint64_t seed, double seconds, double flowsPerSec = 80.0)
{
    trace::WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = seconds;
    cfg.flowsPerSec = flowsPerSec;
    trace::WebTrafficGenerator gen(cfg);
    return gen.generate();
}

std::vector<uint8_t>
compressWithThreads(const trace::Trace &tr, uint32_t threads)
{
    fccc::FccConfig cfg;
    cfg.threads = threads;
    fccc::FccTraceCompressor codec(cfg);
    return codec.compress(tr);
}

} // namespace

TEST(ThreadPool, ParallelForCoversEveryIndex)
{
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    util::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([i] {
            if (i == 5)
                throw util::Error("boom");
        });
    EXPECT_THROW(pool.wait(), util::Error);
    // The pool stays usable after an error.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManySmallTasksBalance)
{
    util::ThreadPool pool(8);
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(1000, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 1000ull * 999 / 2);
}

TEST(Sharding, ShardedAssemblyMatchesSequential)
{
    trace::Trace tr = webTrace(41, 8.0);
    flow::FlowTable table;
    auto sequential = table.assemble(tr);

    util::ThreadPool pool(4);
    auto sharded = table.assembleSharded(tr, &pool);

    std::vector<flow::AssembledFlow> merged;
    for (auto &shard : sharded)
        for (auto &f : shard)
            merged.push_back(std::move(f));
    std::sort(merged.begin(), merged.end(), flow::canonicalFlowLess);

    ASSERT_EQ(merged.size(), sequential.size());
    for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].key, sequential[i].key);
        EXPECT_EQ(merged[i].packetIndex, sequential[i].packetIndex);
        EXPECT_EQ(merged[i].fromClient, sequential[i].fromClient);
        EXPECT_EQ(merged[i].clientIp, sequential[i].clientIp);
        EXPECT_EQ(merged[i].serverIp, sequential[i].serverIp);
    }
}

TEST(Sharding, PartitionIsThreadCountInvariant)
{
    trace::Trace tr = webTrace(42, 6.0);
    flow::FlowTable table;
    auto solo = table.partition(tr, nullptr);
    util::ThreadPool pool(8);
    auto pooled = table.partition(tr, &pool);
    ASSERT_EQ(solo.size(), pooled.size());
    for (size_t s = 0; s < solo.size(); ++s)
        EXPECT_EQ(solo[s], pooled[s]) << "shard " << s;

    // Every packet lands in exactly one shard.
    size_t total = 0;
    for (const auto &shard : solo)
        total += shard.size();
    EXPECT_EQ(total, tr.size());
}

TEST(Parallel, CompressedBytesIdenticalAcrossThreadCounts)
{
    trace::Trace tr = webTrace(2005, 12.0, 120.0);
    auto one = compressWithThreads(tr, 1);
    auto two = compressWithThreads(tr, 2);
    auto eight = compressWithThreads(tr, 8);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(Parallel, DecompressionIdenticalAcrossThreadCounts)
{
    trace::Trace tr = webTrace(7, 10.0);
    // Small chunks so the trace spans many of them.
    fccc::FccConfig small;
    small.chunkRecords = 64;
    auto bytes = fccc::FccTraceCompressor(small).compress(tr);

    auto restoreWith = [&](uint32_t threads) {
        fccc::FccConfig cfg;
        cfg.chunkRecords = 64;
        cfg.threads = threads;
        return fccc::FccTraceCompressor(cfg).decompress(bytes);
    };
    trace::Trace a = restoreWith(1);
    trace::Trace b = restoreWith(8);
    ASSERT_EQ(a.size(), b.size());
    // Byte-identical reconstruction, not just statistically alike.
    EXPECT_EQ(trace::writeTsh(a), trace::writeTsh(b));
}

TEST(Parallel, ChunkedContainerRoundTrips)
{
    trace::Trace tr = webTrace(11, 8.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    auto bytes = codec.compressWithStats(tr, stats);
    EXPECT_GT(stats.flows, 100u);

    // The container is FCC2 and decodes with chunk boundaries.
    auto d = fccc::deserialize(bytes);
    EXPECT_FALSE(d.chunkSizes.empty());
    uint64_t records = 0;
    for (uint32_t c : d.chunkSizes)
        records += c;
    EXPECT_EQ(records, d.timeSeq.size());

    trace::Trace restored = codec.decompress(bytes);
    EXPECT_EQ(restored.size(), tr.size());
    flow::FlowTable table;
    auto origStats =
        flow::computeFlowStats(table.assemble(tr), tr);
    auto backStats =
        flow::computeFlowStats(table.assemble(restored), restored);
    EXPECT_EQ(backStats.flows, origStats.flows);
    EXPECT_EQ(backStats.lengthCounts, origStats.lengthCounts);
}

TEST(Parallel, ChunkSizeDoesNotChangeRecordContent)
{
    trace::Trace tr = webTrace(13, 6.0);
    fccc::FccConfig big;
    big.chunkRecords = 100000;
    fccc::FccConfig tiny;
    tiny.chunkRecords = 16;
    auto dBig = fccc::deserialize(
        fccc::FccTraceCompressor(big).compress(tr));
    auto dTiny = fccc::deserialize(
        fccc::FccTraceCompressor(tiny).compress(tr));
    ASSERT_EQ(dBig.timeSeq.size(), dTiny.timeSeq.size());
    for (size_t i = 0; i < dBig.timeSeq.size(); ++i) {
        EXPECT_EQ(dBig.timeSeq[i].firstTimestampUs,
                  dTiny.timeSeq[i].firstTimestampUs);
        EXPECT_EQ(dBig.timeSeq[i].templateIndex,
                  dTiny.timeSeq[i].templateIndex);
        EXPECT_EQ(dBig.timeSeq[i].addressIndex,
                  dTiny.timeSeq[i].addressIndex);
    }
    EXPECT_GT(dTiny.chunkSizes.size(), dBig.chunkSizes.size());
}

TEST(Parallel, LegacyV1ContainerStillDecompresses)
{
    trace::Trace tr = webTrace(17, 6.0);
    fccc::FccTraceCompressor codec;
    fccc::FccCompressStats stats;
    auto datasets = codec.buildDatasets(tr, stats);

    // Force the legacy writer; the decoder must auto-detect it and
    // take the sequential single-RNG path.
    auto v1 = fccc::serialize(datasets);
    auto decoded = fccc::deserialize(v1);
    EXPECT_TRUE(decoded.chunkSizes.empty());

    trace::Trace restored = codec.decompress(v1);
    EXPECT_EQ(restored.size(), tr.size());

    // A config with chunkRecords == 0 writes FCC1 end to end.
    fccc::FccConfig v1cfg;
    v1cfg.chunkRecords = 0;
    auto bytes = fccc::FccTraceCompressor(v1cfg).compress(tr);
    EXPECT_EQ(bytes, v1);
}

TEST(Parallel, StreamingChunkedDecompressMatchesInMemory)
{
    // Many tiny chunks force several expand batches through the
    // bounded-memory flush; the file output must be the in-memory
    // reconstruction as a multiset, and time-ordered.
    trace::Trace tr = webTrace(23, 10.0);
    fccc::FccConfig cfg;
    cfg.chunkRecords = 32;
    cfg.threads = 3;
    fccc::FccTraceCompressor codec(cfg);
    auto bytes = codec.compress(tr);
    ASSERT_GT(fccc::deserialize(bytes).chunkSizes.size(), 6u);
    trace::Trace inMemory = codec.decompress(bytes);

    std::string fccIn = fcc::test::tempPath("chunked.fcc");
    std::string tshOut = fcc::test::tempPath("chunked.tsh");
    {
        std::ofstream f(fccIn, std::ios::binary);
        f.write(reinterpret_cast<const char *>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    auto stats =
        fccc::decompressTraceFile(fccIn, tshOut, cfg, kTsh);
    EXPECT_EQ(stats.packets, inMemory.size());

    trace::Trace streamed = trace::readTshFile(tshOut);
    EXPECT_TRUE(streamed.isTimeOrdered());
    ASSERT_EQ(streamed.size(), inMemory.size());

    auto sortedTsh = [](trace::Trace t) {
        auto v = t.packets();
        std::sort(v.begin(), v.end(),
                  [](const trace::PacketRecord &a,
                     const trace::PacketRecord &b) {
                      auto key = [](const trace::PacketRecord &p) {
                          return std::tuple(p.timestampNs, p.srcIp,
                                            p.dstIp, p.srcPort,
                                            p.dstPort, p.seq, p.ack,
                                            p.ipId);
                      };
                      return key(a) < key(b);
                  });
        return trace::writeTsh(trace::Trace(std::move(v)));
    };
    EXPECT_EQ(sortedTsh(inMemory), sortedTsh(streamed));

    std::remove(fccIn.c_str());
    std::remove(tshOut.c_str());
}

TEST(Parallel, HybridDeflateContainerRoundTrips)
{
    trace::Trace tr = webTrace(19, 5.0);
    fccc::FccConfig cfg;
    cfg.deflateDatasets = true;
    fccc::FccTraceCompressor codec(cfg);
    auto bytes = codec.compress(tr);
    trace::Trace restored = codec.decompress(bytes);
    EXPECT_EQ(restored.size(), tr.size());
}
