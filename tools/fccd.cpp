/**
 * @file
 * fccd — the continuous-capture archiver daemon.
 *
 *   fccd [options] <input> <outdir>
 *
 * Consumes a packet stream — a capture file (TSH/pcap/pcapng,
 * optionally replayed at --rate), a FIFO, or with --listen a socket
 * endpoint a producer connects to — and cuts it into sealed,
 * indexed FCC3 archives in <outdir>, one per epoch, with a
 * crash-safe CATALOG file that fccserve/fccquery can consume at any
 * moment (docs/DAEMON.md). The process scaffolding lives here; the
 * ingest loop is archive::Daemon, which tests drive in-process.
 *
 * Signals: SIGTERM/SIGINT seal what is buffered and exit; SIGHUP
 * seals and re-arms immediately (rotate-now). SIGKILL loses only
 * the unsealed epoch — everything sealed is durable by the
 * fsync-before-footer discipline of archive::ArchiveWriter.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "archive/daemon.hpp"
#include "codec/backend/backend.hpp"
#include "trace/source.hpp"
#include "util/error.hpp"

#include "tools/cli.hpp"

using namespace fcc;

namespace {

archive::DaemonControl gControl;

extern "C" void
onStop(int)
{
    gControl.stop.store(true);
}

extern "C" void
onRotate(int)
{
    gControl.rotateNow.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    archive::DaemonConfig config;
    // The daemon's product is the seekable archive: FCC3 with the
    // chunk/flow index, ready for fccserve the moment it seals.
    config.codec.container = codec::fcc::ContainerFormat::Fcc3;
    config.codec.index = true;
    config.rotation.archiveRecords = 1u << 20;

    cli::FlagSet flags(
        "[options] <input> <outdir>",
        "Continuous-capture archiver: ingest a packet stream and\n"
        "seal it into indexed FCC3 archives with a crash-safe\n"
        "catalog (docs/DAEMON.md). <input> is a trace file or FIFO\n"
        "path, or with --listen a socket endpoint (unix:/p,\n"
        "tcp:host:port) accepting one producer. SIGTERM seals and\n"
        "exits; SIGHUP seals and re-arms now.");
    flags.add("--listen",
              "treat <input> as a socket endpoint to\n"
              "accept one producer connection on (flat\n"
              "TSH records)",
              [&] { config.listen = true; });
    flags.add("--in-format", "FMT",
              "auto|tsh|pcap|pcapng[.gz] (default auto;\n"
              "FIFOs need an explicit format)",
              [&](const char *v) {
                  config.inputFormat =
                      trace::parseTraceFormatSpec(v);
              });
    flags.add("--prefix", "NAME",
              "archive file name prefix (default\n"
              "\"archive\": archive-000000.fcc, ...)",
              [&](const char *v) { config.prefix = v; });
    flags.add("--archive-records", "N",
              "seal + re-arm after N packets per epoch\n"
              "(default 1048576; 0 = only by time/signal)",
              [&](const char *v) {
                  config.rotation.archiveRecords =
                      cli::parseUnsigned("--archive-records", v);
              });
    flags.add("--archive-ms", "N",
              "seal + re-arm after N wall milliseconds\n"
              "(default 0 = off)",
              [&](const char *v) {
                  config.rotation.archiveWallMs =
                      cli::parseUnsigned("--archive-ms", v);
              });
    flags.add("--rotate-records", "N",
              "cut a chunk after N packets (default 0:\n"
              "only the codec's --chunk-records slicing)",
              [&](const char *v) {
                  config.rotation.chunkRecords =
                      cli::parseUnsigned("--rotate-records", v);
              });
    flags.add("--rotate-ms", "N",
              "cut a chunk after N wall milliseconds\n"
              "(default 0 = off)",
              [&](const char *v) {
                  config.rotation.chunkWallMs =
                      cli::parseUnsigned("--rotate-ms", v);
              });
    flags.add("--rate", "PPS",
              "replay pacing in packets per second\n"
              "(default 0 = as fast as the input delivers)",
              [&](const char *v) {
                  config.replayRate = std::atof(v);
                  if (config.replayRate < 0)
                      throw util::Error(
                          "--rate: must be non-negative");
              });
    flags.add("--cold-epochs",
              "do not carry the template store across\n"
              "re-arms (every epoch clusters from scratch)",
              [&] { config.session.carryTemplates = false; });
    flags.add("--chunk-records", "N",
              "time-seq records per codec chunk (default\n"
              "4096; the unit of parallel decode and\n"
              "random access)",
              [&](const char *v) {
                  config.codec.chunkRecords =
                      static_cast<uint32_t>(cli::parseUnsigned(
                          "--chunk-records", v, 1, UINT32_MAX));
              });
    flags.add("--backend", "NAME",
              "store|deflate|range — FCC3 per-column\n"
              "entropy backend (default deflate)",
              [&](const char *v) {
                  config.codec.backend =
                      codec::backend::parseBackendName(v);
              });
    flags.add("--threads", "N",
              "pipeline workers, 0 = all cores (default;\n"
              "output bytes never depend on it)",
              [&](const char *v) {
                  config.codec.threads =
                      static_cast<uint32_t>(cli::parseUnsigned(
                          "--threads", v, 0, UINT32_MAX));
              });
    flags.add("--fidelity", "TIER",
              "exact|quantized|header|flow — fidelity tier\n"
              "of the sealed archives (default exact; see\n"
              "docs/FIDELITY.md — flow-tier archives serve\n"
              "aggregate queries only)",
              [&](const char *v) {
                  config.codec.fidelity =
                      codec::fcc::parseFidelityName(v);
              });
    flags.add("--quantum-us", "N",
              "timestamp grid of the quantized tier in\n"
              "microseconds (default 1000)",
              [&](const char *v) {
                  config.codec.quantumUs = cli::parseUnsigned(
                      "--quantum-us", v, 1, UINT64_MAX);
              });

    cli::ParseResult parsed = flags.parse(argc, argv);
    if (parsed.exit)
        return parsed.code;
    if (parsed.next + 2 != argc) {
        flags.printHelp(argv[0], stderr);
        return 2;
    }
    config.input = argv[parsed.next];
    config.outputDir = argv[parsed.next + 1];

    try {
        archive::Daemon daemon(config);

        std::signal(SIGINT, onStop);
        std::signal(SIGTERM, onStop);
        std::signal(SIGHUP, onRotate);

        std::printf("fccd: %s -> %s\n", config.input.c_str(),
                    config.outputDir.c_str());
        std::fflush(stdout);

        archive::DaemonReport report = daemon.run(
            gControl, [](const archive::CatalogEntry &entry) {
                std::printf(
                    "sealed %s: %llu flows, %llu packets, "
                    "%llu bytes\n",
                    entry.name.c_str(),
                    static_cast<unsigned long long>(
                        entry.records),
                    static_cast<unsigned long long>(
                        entry.packets),
                    static_cast<unsigned long long>(entry.bytes));
                std::fflush(stdout);
            });

        cli::printCompressStats(report.stats);
        return 0;
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
