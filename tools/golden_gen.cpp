/**
 * @file
 * golden_gen — (re)generate the golden-archive corpus under
 * tests/golden/ that tests/test_golden.cpp pins the wire formats
 * against.
 *
 *   golden_gen <golden-dir>
 *
 * Writes, from one deterministic synthetic trace:
 *  - source.tsh: the input trace (provenance; the goldens are
 *    self-contained, the test never re-compresses it),
 *  - one archive per container/backend/layout/fidelity cell,
 *  - the expected decompression references: expected-fcc1.tsh (the
 *    unchunked expansion), expected-chunked.tsh (every chunked
 *    container — FCC2 and all FCC3 variants decode identically),
 *    expected-quantized.tsh and expected-header.tsh (the lossy
 *    tiers' documented reconstructions).
 *
 * Run this ONLY when the wire format intentionally changes, and
 * commit the regenerated corpus together with the format bump —
 * test_golden failing after an innocent-looking change means the
 * change was not innocent.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

void
writeBytes(const std::string &path,
           const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    util::require(out.good(), "cannot open " + path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    util::require(out.good(), "cannot write " + path);
}

struct Spec
{
    const char *name;
    fccc::ContainerFormat container;
    codec::backend::EntropyBackend backend;
    bool index;
    fccc::Fidelity fidelity;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <golden-dir>\n", argv[0]);
        return 2;
    }
    const std::string dir = argv[1];

    // The corpus trace: small enough to keep the committed archives
    // a few KB each, busy enough to exercise short and long flows,
    // multiple chunks (chunkRecords = 64 below) and the index.
    trace::WebGenConfig webCfg;
    webCfg.seed = 11;
    webCfg.durationSec = 4.0;
    webCfg.flowsPerSec = 30.0;
    trace::WebTrafficGenerator gen(webCfg);
    trace::Trace original = gen.generate();

    using Backend = codec::backend::EntropyBackend;
    const Spec specs[] = {
        {"fcc1.fcc", fccc::ContainerFormat::Fcc1, Backend::Deflate,
         false, fccc::Fidelity::Exact},
        {"fcc2.fcc", fccc::ContainerFormat::Fcc2, Backend::Deflate,
         false, fccc::Fidelity::Exact},
        {"fcc3-store.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Store, false, fccc::Fidelity::Exact},
        {"fcc3-store-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Store, true, fccc::Fidelity::Exact},
        {"fcc3-deflate.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Deflate, false, fccc::Fidelity::Exact},
        {"fcc3-deflate-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Deflate, true, fccc::Fidelity::Exact},
        {"fcc3-range.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Range, false, fccc::Fidelity::Exact},
        {"fcc3-range-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Range, true, fccc::Fidelity::Exact},
        {"fcc3-range-lanes.fcc", fccc::ContainerFormat::Fcc3,
         Backend::RangeLanes, false, fccc::Fidelity::Exact},
        {"fcc3-range-lanes-indexed.fcc",
         fccc::ContainerFormat::Fcc3, Backend::RangeLanes, true,
         fccc::Fidelity::Exact},
        {"fcc3-quantized-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Deflate, true, fccc::Fidelity::Quantized},
        {"fcc3-header-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Deflate, true, fccc::Fidelity::Header},
        {"fcc3-flow-indexed.fcc", fccc::ContainerFormat::Fcc3,
         Backend::Deflate, true, fccc::Fidelity::Flow},
    };

    try {
        trace::writeTshFile(original, dir + "/source.tsh");

        // Decode references, filled in as the matching archives are
        // produced; chunkedRef is cross-checked against every
        // chunked exact cell.
        std::vector<uint8_t> fcc1Ref, chunkedRef;

        for (const Spec &spec : specs) {
            fccc::FccConfig cfg;
            cfg.container = spec.container;
            cfg.backend = spec.backend;
            cfg.index = spec.index;
            cfg.fidelity = spec.fidelity;
            cfg.chunkRecords = 64;
            if (spec.container == fccc::ContainerFormat::Fcc1)
                cfg.chunkRecords = 0;
            cfg.validate();

            fccc::FccTraceCompressor codec(cfg);
            std::vector<uint8_t> compressed =
                codec.compress(original);
            writeBytes(dir + "/" + spec.name, compressed);

            std::string refName;
            if (spec.fidelity == fccc::Fidelity::Flow) {
                std::printf("%-28s %6zu bytes  (no packet "
                            "reconstruction)\n",
                            spec.name, compressed.size());
                continue;
            }
            trace::Trace decoded = codec.decompress(compressed);
            std::vector<uint8_t> tsh = trace::writeTsh(decoded);

            switch (spec.fidelity) {
              case fccc::Fidelity::Quantized:
                refName = "expected-quantized.tsh";
                writeBytes(dir + "/" + refName, tsh);
                break;
              case fccc::Fidelity::Header:
                refName = "expected-header.tsh";
                writeBytes(dir + "/" + refName, tsh);
                break;
              default:
                if (spec.container ==
                    fccc::ContainerFormat::Fcc1) {
                    refName = "expected-fcc1.tsh";
                    fcc1Ref = tsh;
                    writeBytes(dir + "/" + refName, tsh);
                } else {
                    refName = "expected-chunked.tsh";
                    if (chunkedRef.empty()) {
                        chunkedRef = tsh;
                        writeBytes(dir + "/" + refName, tsh);
                    }
                    util::require(
                        tsh == chunkedRef,
                        std::string(spec.name) +
                            ": chunked decode diverges from "
                            "expected-chunked.tsh");
                }
                break;
            }
            std::printf("%-28s %6zu bytes  -> %s\n", spec.name,
                        compressed.size(), refName.c_str());
        }
        std::printf("golden corpus written to %s\n", dir.c_str());
        return 0;
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
