/**
 * @file
 * Shared command-line flag registry for the example tools.
 *
 * Every tool used to hand-roll the same strncmp("--", ...) loop; the
 * drift showed (flags documented in one place, parsed in another,
 * audited in a third). A FlagSet is the single source of truth: each
 * flag is registered once with its value placeholder and help text,
 * parse() consumes argv against the registry, and printHelp() renders
 * the reference from the same table — a registered flag cannot be
 * missing from --help by construction, which is what the CI help
 * audit leans on.
 *
 * Conventions preserved from the hand-rolled loops: flags come before
 * positional arguments and subcommands, `--help` prints to stdout and
 * exits 0, an unknown flag / missing value / bad value prints the
 * usage to stderr and exits 2.
 */

#ifndef FCC_TOOLS_CLI_HPP
#define FCC_TOOLS_CLI_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "codec/fcc/stream.hpp"
#include "util/error.hpp"

namespace fcc::cli {

/** What parse() decided: where positionals start, or how to exit. */
struct ParseResult
{
    /** Index of the first positional argument. */
    int next = 1;
    /** True when the process should exit now (help or error). */
    bool exit = false;
    /** Exit code to use when @ref exit is set. */
    int code = 0;
};

class FlagSet
{
  public:
    /**
     * @param usageLine  the one-line synopsis, without the leading
     *                   "usage: " or the program name
     * @param intro      paragraph(s) printed between the synopsis and
     *                   the flag table ("" for none)
     */
    FlagSet(std::string usageLine, std::string intro)
        : usage_(std::move(usageLine)), intro_(std::move(intro))
    {
    }

    /** Register a flag taking a value ("--threads N"). The handler
     *  may throw fcc::util::Error to reject the value. */
    void
    add(const char *name, const char *valueName, const char *help,
        std::function<void(const char *)> handler)
    {
        flags_.push_back({name, valueName, help,
                          std::move(handler), nullptr});
    }

    /** Register a boolean flag ("--count"). */
    void
    add(const char *name, const char *help,
        std::function<void()> handler)
    {
        flags_.push_back(
            {name, "", help, nullptr, std::move(handler)});
    }

    /** Extra lines appended after the flag table (subcommands...). */
    void epilog(std::string text) { epilog_ = std::move(text); }

    /**
     * Consume leading `--flag [value]` arguments. Stops at the first
     * argument that does not start with "--" (or at "--" itself,
     * which is swallowed). `--help` renders the reference and asks
     * for exit 0; anything unknown or invalid renders it to stderr
     * and asks for exit 2.
     */
    ParseResult
    parse(int argc, char **argv)
    {
        ParseResult result;
        int arg = 1;
        while (arg < argc &&
               std::strncmp(argv[arg], "--", 2) == 0) {
            if (std::strcmp(argv[arg], "--") == 0) {
                ++arg;
                break;
            }
            if (std::strcmp(argv[arg], "--help") == 0) {
                printHelp(argv[0], stdout);
                return {arg, true, 0};
            }
            const Flag *flag = find(argv[arg]);
            if (flag == nullptr) {
                std::fprintf(stderr, "error: unknown flag %s\n",
                             argv[arg]);
                printHelp(argv[0], stderr);
                return {arg, true, 2};
            }
            try {
                if (flag->valued()) {
                    if (arg + 1 >= argc)
                        throw util::Error(
                            std::string(flag->name) + " expects " +
                            flag->valueName);
                    flag->onValue(argv[arg + 1]);
                    arg += 2;
                } else {
                    flag->onSet();
                    ++arg;
                }
            } catch (const util::Error &error) {
                std::fprintf(stderr, "error: %s\n", error.what());
                return {arg, true, 2};
            }
        }
        result.next = arg;
        return result;
    }

    /** Render "usage:" + intro + the flag table + epilog. */
    void
    printHelp(const char *argv0, std::FILE *out) const
    {
        std::fprintf(out, "usage: %s %s\n", argv0, usage_.c_str());
        if (!intro_.empty())
            std::fprintf(out, "\n%s\n", intro_.c_str());
        std::fprintf(out, "\noptions:\n");
        for (const Flag &flag : flags_)
            printFlag(out, flag);
        std::fprintf(out, "  %-18s %s\n", "--help",
                     "show this text");
        if (!epilog_.empty())
            std::fprintf(out, "\n%s\n", epilog_.c_str());
    }

  private:
    struct Flag
    {
        const char *name;
        const char *valueName;  ///< "" = boolean
        const char *help;
        std::function<void(const char *)> onValue;
        std::function<void()> onSet;

        bool valued() const { return valueName[0] != '\0'; }
    };

    const Flag *
    find(const char *name) const
    {
        for (const Flag &flag : flags_)
            if (std::strcmp(flag.name, name) == 0)
                return &flag;
        return nullptr;
    }

    static void
    printFlag(std::FILE *out, const Flag &flag)
    {
        std::string head(flag.name);
        if (flag.valued()) {
            head += ' ';
            head += flag.valueName;
        }
        // Help text may span lines; indent continuations to the
        // description column.
        const char *text = flag.help;
        bool first = true;
        while (*text != '\0') {
            const char *nl = std::strchr(text, '\n');
            size_t len = nl ? static_cast<size_t>(nl - text)
                            : std::strlen(text);
            std::fprintf(out, "  %-18s %.*s\n",
                         first ? head.c_str() : "",
                         static_cast<int>(len), text);
            text += len + (nl ? 1 : 0);
            first = false;
        }
    }

    std::string usage_;
    std::string intro_;
    std::string epilog_;
    std::vector<Flag> flags_;
};

/** Parse a base-10 unsigned integer flag value.
 *  @throws fcc::util::Error naming @p flag on anything else. */
inline uint64_t
parseUnsigned(const char *flag, const char *text)
{
    if (text[0] == '\0')
        throw util::Error(std::string(flag) + ": empty value");
    uint64_t value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            throw util::Error(std::string(flag) + ": '" + text +
                              "' is not a non-negative integer");
        uint64_t digit = static_cast<uint64_t>(*p - '0');
        if (value > (UINT64_MAX - digit) / 10)
            throw util::Error(std::string(flag) + ": '" + text +
                              "' overflows");
        value = value * 10 + digit;
    }
    return value;
}

/**
 * One shared rendering of a compression run's StreamStats — fcctool
 * (one-shot) and fccd (multi-epoch) print the same shape, so the
 * session-lifecycle counters read identically across the tools.
 */
inline void
printCompressStats(const codec::fcc::StreamStats &stats)
{
    std::printf("%llu packets, %llu flows: %llu -> %llu bytes "
                "(%.2f%%)\n",
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.flows),
                static_cast<unsigned long long>(stats.inputBytes),
                static_cast<unsigned long long>(stats.outputBytes),
                100.0 * stats.ratio());
    std::printf("sealed: %llu archive%s, %llu chunk%s, %llu "
                "epoch%s\n",
                static_cast<unsigned long long>(
                    stats.archivesSealed),
                stats.archivesSealed == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.chunksSealed),
                stats.chunksSealed == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.epochs),
                stats.epochs == 1 ? "" : "s");
}

/** The decompression-side counterpart of printCompressStats(). */
inline void
printDecompressStats(const codec::fcc::StreamStats &stats)
{
    std::printf("%llu flows -> %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(stats.flows),
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.outputBytes));
}

/** parseUnsigned() with an inclusive [lo, hi] range check. */
inline uint64_t
parseUnsigned(const char *flag, const char *text, uint64_t lo,
              uint64_t hi)
{
    uint64_t value = parseUnsigned(flag, text);
    if (value < lo || value > hi)
        throw util::Error(std::string(flag) + ": " + text +
                          " is outside [" + std::to_string(lo) +
                          ", " + std::to_string(hi) + "]");
    return value;
}

} // namespace fcc::cli

#endif // FCC_TOOLS_CLI_HPP
