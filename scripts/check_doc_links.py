#!/usr/bin/env python3
"""CI link checker for the repository's Markdown docs.

Scans every tracked .md file for relative Markdown links/images
(`[text](path)`, `![alt](path)`) and fails when a target does not
exist relative to the file. External links (http/https/mailto),
pure in-page anchors (#...) and badge/workflow URLs are skipped;
an anchor suffix on a relative link (FILE.md#section) is checked
against the file only.

Usage: scripts/check_doc_links.py [root-dir]
"""

import os
import re
import sys

# [text](target) — target up to the first unescaped ')'; tolerates
# an optional "title" part which we strip below.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", "build-asan", "build-tsan",
                         "build-strict", ".github"}
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    checked = 0
    for path in sorted(md_files(root)):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Badge-style repo-relative links (../../actions/...)
            # point at the forge, not the tree.
            if "/actions/" in target:
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                failures.append(f"{path}: broken link -> {target}")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} relative links"
          f" ({'FAIL' if failures else 'ok'})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
