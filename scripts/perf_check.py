#!/usr/bin/env python3
"""CI perf-regression gate for the bench JSON metrics.

Merges one or more bench-emitted JSON files (flat {"metric": value}
objects, higher = better), writes the merged result, and fails when
any metric present in the baseline has regressed by more than the
allowed fraction.

Usage:
  perf_check.py --baseline bench/perf_baseline.json \
                --out BENCH_pr.json [--max-regression 0.25] \
                current1.json [current2.json ...]

Baseline values are deliberately conservative floors (see
bench/perf_baseline.json): CI hardware varies run to run, so the
gate is tuned to catch structural regressions — an accidentally
quadratic parser, a debug build, a lost fast path — not single-digit
percentage noise. Refresh the floors with:
  FCC_BENCH_SMOKE=1 build/bench/scaling_threads --json a.json
  FCC_BENCH_SMOKE=1 build/bench/io_throughput  --json b.json
then set each floor well below (~1/5 of) the observed value.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    parser.add_argument("--out", required=True,
                        help="write the merged current metrics here")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop below the "
                             "baseline (default 0.25)")
    parser.add_argument("current", nargs="+",
                        help="bench-emitted JSON files to merge")
    args = parser.parse_args()

    merged = {}
    for path in args.current:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict):
            print(f"error: {path} is not a JSON object",
                  file=sys.stderr)
            return 2
        merged.update(data)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    failures = []
    floor_factor = 1.0 - args.max_regression
    print(f"{'metric':<32} {'baseline':>10} {'floor':>10} "
          f"{'current':>10}  verdict")
    for name, base in sorted(baseline.items()):
        if name.startswith("_"):
            continue  # comment keys
        floor = base * floor_factor
        current = merged.get(name)
        if current is None:
            failures.append(f"{name}: metric missing from current "
                            f"run")
            print(f"{name:<32} {base:>10.1f} {floor:>10.1f} "
                  f"{'-':>10}  MISSING")
            continue
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{name:<32} {base:>10.1f} {floor:>10.1f} "
              f"{current:>10.1f}  {verdict}")
        if current < floor:
            failures.append(
                f"{name}: {current:.1f} < floor {floor:.1f} "
                f"(baseline {base:.1f}, tolerance "
                f"{args.max_regression:.0%})")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed "
          f"({len([k for k in baseline if not k.startswith('_')])} "
          "metrics within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
