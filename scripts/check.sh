#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the full test suite.
# Usage: scripts/check.sh [build-dir] [preset]
#   scripts/check.sh                     default Release build
#   scripts/check.sh build-asan asan     ASan+UBSan suite
#   scripts/check.sh build-tsan tsan     ThreadSanitizer suite
# Presets come from CMakePresets.json; the build-dir argument
# overrides the preset's binaryDir.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
PRESET="${2:-}"

# Preset "environment" blocks only apply to the configure step, not
# to ctest below — export the sanitizer runtime options here so UBSan
# findings actually fail the run (harmless for plain builds).
export ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

if [ -n "$PRESET" ]; then
    cmake -B "$BUILD_DIR" -S . --preset "$PRESET"
else
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
