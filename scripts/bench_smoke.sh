#!/usr/bin/env bash
# Bench smoke: run every benchmark binary once in a quick mode so the
# bench/ tree cannot silently rot. Self-contained binaries honour
# FCC_BENCH_SMOKE=1 (tiny workloads); Google-Benchmark binaries get a
# minimal --benchmark_min_time (suffixed form first, bare double as a
# fallback for older library versions).
# Usage: scripts/bench_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

[ -d "$BENCH_DIR" ] || {
    echo "no $BENCH_DIR; build with FCC_BUILD_BENCH=ON first" >&2
    exit 1
}

export FCC_BENCH_SMOKE=1
status=0
for bin in "$BENCH_DIR"/*; do
    [ -x "$bin" ] || continue
    name="$(basename "$bin")"
    case "$name" in
        micro_codecs|micro_deflate|micro_lookup)
            echo "== $name (google-benchmark) =="
            "$bin" --benchmark_min_time=0.01s >/dev/null 2>&1 ||
                "$bin" --benchmark_min_time=0.01 >/dev/null ||
                { echo "FAIL: $name"; status=1; }
            ;;
        *)
            echo "== $name =="
            "$bin" >/dev/null || { echo "FAIL: $name"; status=1; }
            ;;
    esac
done
[ "$status" -eq 0 ] && echo "bench smoke: all binaries ran"
exit "$status"
